// Quantitatively-ranked repair (ROADMAP item 3, after "Quantitative
// Programming by Examples"): the paper ranks a source's alternative plans
// by description length alone (§6.3) and lets the user cycle through them
// (§6.4). RepairCandidates scores every ranked plan with measurable
// objectives a client can weigh instead of eyeballing regexes:
//
//   - Residual — how many of the source's rows the plan still leaves
//     outside the target pattern ("fewest flagged rows"): the dominant
//     objective, because a plan that fixes fewer rows is wrong whatever
//     its length.
//   - EditDistance — the op-level Levenshtein distance from the plan
//     currently in effect ("minimal program edit"): among equally
//     correct plans, prefer the smallest change to what the user already
//     verified.
//   - DL — the paper's description length, kept as the final tie-break
//     toward simpler programs.
//
// Candidates are returned best-first under the lexicographic order
// (Residual, EditDistance, DL); Score folds the same objectives into one
// display scalar with matching weights.
package clx

import (
	"sort"
	"strconv"

	"clx/internal/rematch"
	"clx/internal/replace"
	"clx/internal/token"
	"clx/internal/unifi"
)

// RepairCandidate is one ranked alternative plan for a source pattern,
// scored with the quantitative objectives above. Repair(Source, Alt)
// puts it in effect.
type RepairCandidate struct {
	// Source and Alt address the plan: Source indexes Sources(), Alt the
	// source's ranked plan list (the same indices Repair takes).
	Source int
	Alt    int
	// Op is the candidate rendered as the Replace operation the user
	// verifies.
	Op replace.Op
	// DL is the plan's description length (§6.3) — the paper's ranking.
	DL float64
	// Residual counts the source's not-yet-clean snapshot rows this plan
	// fails to land in the target pattern (apply error or off-target
	// output). The default plan of a solved source scores 0.
	Residual int
	// EditDistance is the op-level Levenshtein distance from the plan
	// currently in effect; the in-effect plan itself scores 0.
	EditDistance int
	// Score folds the objectives into one ascending display scalar:
	// Residual*1000 + EditDistance + DL/10000. The authoritative order is
	// the lexicographic (Residual, EditDistance, DL) sort of the returned
	// slice.
	Score float64
	// Selected marks the plan currently in effect.
	Selected bool
}

// RepairCandidates scores every ranked plan of source i against the
// snapshot rows that source covers and returns them best-first. It never
// mutates the transformation; pass a candidate's (Source, Alt) to Repair
// to adopt it. Out-of-range sources return nil.
func (t *Transformation) RepairCandidates(i int) []RepairCandidate {
	if i < 0 || i >= len(t.res.Sources) {
		return nil
	}
	src := t.res.Sources[i]
	target := rematch.CompileCached(t.res.Target.Tokens())
	// The source's rows, from the snapshot the transformation was labeled
	// against. Rows already in the target pattern are untouched by Run,
	// so they are excluded from the residual count.
	var rows []string
	if src.Node != nil {
		for _, c := range src.Node.Leaves {
			for _, ri := range c.Rows {
				if v := t.data[ri]; !target.Matches(v) {
					rows = append(rows, v)
				}
			}
		}
	}
	cur := planOps(src.Plans[src.Chosen].Plan, src.Source)
	out := make([]RepairCandidate, 0, len(src.Plans))
	for j, r := range src.Plans {
		c := RepairCandidate{
			Source:       i,
			Alt:          j,
			Op:           replace.ExplainCase(unifi.Case{Source: src.Source, Plan: r.Plan}),
			DL:           r.DL,
			EditDistance: editDistance(cur, planOps(r.Plan, src.Source)),
			Selected:     j == src.Chosen,
		}
		for _, v := range rows {
			got, err := r.Plan.Apply(src.Source, v)
			if err != nil || !target.Matches(got) {
				c.Residual++
			}
		}
		c.Score = float64(c.Residual)*1000 + float64(c.EditDistance) + c.DL/1e4
		out = append(out, c)
	}
	sort.SliceStable(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.Residual != y.Residual {
			return x.Residual < y.Residual
		}
		if x.EditDistance != y.EditDistance {
			return x.EditDistance < y.EditDistance
		}
		if x.DL != y.DL {
			return x.DL < y.DL
		}
		return x.Alt < y.Alt
	})
	return out
}

// planOps renders a plan as its sequence of single-token effects — the
// same canonical form synthesis deduplicates plans by (Appendix B):
// multi-token extracts split into per-token extracts, and extracts of
// fixed literal source tokens collapse into the constant they copy. Edit
// distance over this form measures semantic plan difference, not
// notation difference.
func planOps(p unifi.Plan, src Pattern) []string {
	var ops []string
	for _, op := range p.Ops {
		switch op := op.(type) {
		case unifi.ConstStr:
			ops = append(ops, "C"+strconv.Quote(op.S))
		case unifi.Extract:
			for j := op.I; j <= op.J; j++ {
				t := src.At(j - 1)
				if t.IsLiteral() && t.Quant != token.Plus {
					ops = append(ops, "C"+strconv.Quote(t.Expand()))
				} else {
					ops = append(ops, "X"+strconv.Itoa(j))
				}
			}
		}
	}
	return ops
}

// editDistance is the Levenshtein distance between two op sequences,
// two-row dynamic programming.
func editDistance(a, b []string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	curr := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if d := prev[j] + 1; d < m {
				m = d
			}
			if d := curr[j-1] + 1; d < m {
				m = d
			}
			curr[j] = m
		}
		prev, curr = curr, prev
	}
	return prev[len(b)]
}
