// Robustness tests: pathological columns through the public API. The
// engine must never panic, never corrupt flagged rows, and stay fast
// enough to be interactive.
package clx_test

import (
	"strings"
	"testing"
	"time"

	clx "clx"
)

func label(t *testing.T, data []string, target string) *clx.Transformation {
	t.Helper()
	tr, err := clx.NewSession(data).Label(clx.MustParsePattern(target))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEmptyColumn(t *testing.T) {
	tr := label(t, nil, "<D>3")
	out, flagged := tr.Run()
	if len(out) != 0 || len(flagged) != 0 {
		t.Errorf("out=%v flagged=%v", out, flagged)
	}
}

func TestSingleRowColumn(t *testing.T) {
	tr := label(t, []string{"(734) 645-8397"}, "<D>3'-'<D>3'-'<D>4")
	out, flagged := tr.Run()
	if len(flagged) != 0 || out[0] != "734-645-8397" {
		t.Errorf("out=%v flagged=%v", out, flagged)
	}
}

func TestAllNoiseColumn(t *testing.T) {
	data := []string{"???", "!!!", "@@@"}
	tr := label(t, data, "<D>3'-'<D>4")
	out, flagged := tr.Run()
	if len(flagged) != len(data) {
		t.Errorf("flagged = %v, want all rows", flagged)
	}
	for i := range data {
		if out[i] != data[i] {
			t.Errorf("noise row %d mutated: %q", i, out[i])
		}
	}
}

func TestEmptyStringRows(t *testing.T) {
	data := []string{"", "123-4567", "", ""}
	tr := label(t, data, "<D>3'-'<D>4")
	out, flagged := tr.Run()
	for _, i := range flagged {
		if data[i] != "" {
			t.Errorf("row %d flagged unexpectedly", i)
		}
	}
	for i, s := range data {
		if s == "" && out[i] != "" {
			t.Errorf("empty row %d mutated to %q", i, out[i])
		}
	}
}

func TestVeryLongValues(t *testing.T) {
	long := strings.Repeat("ab12-", 2000) + "x"
	data := []string{long, "123-4567"}
	sess := clx.NewSession(data)
	if got := len(sess.Clusters()); got != 2 {
		t.Errorf("clusters = %d", got)
	}
	tr, err := sess.Label(clx.MustParsePattern("<D>3'-'<D>4"))
	if err != nil {
		t.Fatal(err)
	}
	out, flagged := tr.Run()
	if len(flagged) != 1 || out[0] != long {
		t.Errorf("long row should pass through flagged")
	}
}

func TestHeavyDuplicates(t *testing.T) {
	data := make([]string, 5000)
	for i := range data {
		data[i] = "(734) 645-8397"
	}
	data[4999] = "734-645-8397"
	tr := label(t, data, "<D>3'-'<D>3'-'<D>4")
	out, flagged := tr.Run()
	if len(flagged) != 0 {
		t.Fatalf("flagged = %d", len(flagged))
	}
	for _, s := range out {
		if s != "734-645-8397" {
			t.Fatalf("bad output %q", s)
		}
	}
}

func TestManyDistinctFormats(t *testing.T) {
	// 26 structurally distinct formats (prefix runs of growing length):
	// one leaf cluster each, and one source candidate each.
	var data []string
	for k := 1; k <= 26; k++ {
		prefix := strings.Repeat("a", k)
		data = append(data, prefix+":123", prefix+":456")
	}
	sess := clx.NewSession(data)
	if got := len(sess.Clusters()); got != 26 {
		t.Errorf("clusters = %d, want 26", got)
	}
	tr, err := sess.Label(clx.MustParsePattern("<D>3"))
	if err != nil {
		t.Fatal(err)
	}
	out, flagged := tr.Run()
	if len(flagged) != 0 {
		t.Errorf("flagged = %v", flagged)
	}
	for i, s := range out {
		want := data[i][strings.IndexByte(data[i], ':')+1:]
		if s != want {
			t.Errorf("out[%d] = %q, want %q", i, s, want)
		}
	}
}

// Interactivity guard: a 20k-row heterogeneous column must profile,
// synthesize and transform well under a second.
func TestInteractiveLatencyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var data []string
	for i := 0; i < 20000; i++ {
		a := []string{"123", "456", "789"}[i%3]
		b := []string{"645", "263", "555"}[(i/3)%3]
		c := []string{"8397", "1192", "0000"}[(i/9)%3]
		switch i % 4 {
		case 0:
			data = append(data, "("+a+") "+b+"-"+c)
		case 1:
			data = append(data, a+"-"+b+"-"+c)
		case 2:
			data = append(data, a+"."+b+"."+c)
		default:
			data = append(data, a+" "+b+" "+c)
		}
	}
	start := time.Now()
	tr := label(t, data, "<D>3'-'<D>3'-'<D>4")
	out, flagged := tr.Run()
	elapsed := time.Since(start)
	if len(flagged) != 0 {
		t.Fatalf("flagged = %d", len(flagged))
	}
	_ = out
	if elapsed > time.Second {
		t.Errorf("20k-row session took %v, want < 1s (interactivity, §4)", elapsed)
	}
}

func TestUnicodeColumn(t *testing.T) {
	data := []string{"café 12", "müsli 34", "café 56"}
	sess := clx.NewSession(data)
	for _, c := range sess.Clusters() {
		for _, ri := range c.Rows {
			if !c.Pattern.Matches(data[ri]) {
				t.Errorf("pattern %s does not match %q", c.Pattern, data[ri])
			}
		}
	}
	tr, err := sess.Label(clx.MustParsePattern("<D>2"))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := tr.Run()
	for i, s := range out {
		if !strings.HasSuffix(data[i], s) && s != data[i] {
			t.Errorf("out[%d] = %q from %q", i, s, data[i])
		}
	}
}
