# Test tiers. Tier-1 is the gate every change must keep green; the race
# tier additionally runs the full suite under the race detector, which
# exercises the parallel pipeline (internal/parallel, the rematch compile
# cache, the intern table, the sharded cluster/synth/transform paths, and
# the bounded streaming engine) with worker counts > 1. `gate` is the full
# pre-merge gate: tier-1 + race + coverage floors + a fuzz smoke pass.

GO ?= go

.PHONY: test race gate cover fuzz-smoke apply-parity profile-parity bench bench-profile bench-check pipeline profile bench-store bench-stream bench-obs obs-smoke bench-apply load-smoke bench-load cluster-smoke cluster-parity session-smoke

# Tier-1: vet + build + unit tests (ROADMAP.md contract).
test:
	$(GO) vet ./... && $(GO) build ./... && $(GO) test ./...

# Race tier: race-detector run of every package, including the
# worker-count determinism suite.
race:
	$(GO) vet ./... && $(GO) test -race ./...

# Full gate: tier-1, race tier, per-package coverage floors, a
# 10s-per-target fuzz smoke over the seed corpora, the automaton-vs-
# reference apply-parity smoke, the metrics-overhead smoke test, the
# load-harness smoke, and the cluster smoke.
gate: test race cover fuzz-smoke apply-parity profile-parity obs-smoke load-smoke cluster-smoke session-smoke

# Apply-parity smoke: the byte-automaton engine must produce byte-identical
# output (rows, flagged indices, errors) to the retained backtracking
# engine over the 47-task benchmark suite, across chunk sizes and worker
# counts, under the race detector.
apply-parity:
	$(GO) test -race -run 'TestAutomatonDifferentialBenchSuite' .

# Profile-parity smoke: the sharded, mergeable, incremental profile index
# must emit byte-identical hierarchies to the reference per-row profiler
# across shard counts (1/4/16), worker counts (1/2/4/8), and append
# schedules (all-at-once vs four increments), under the race detector.
profile-parity:
	$(GO) test -race -run 'TestShardedIndexMatchesReference|TestProfileAutoCollapse' ./internal/cluster

# Coverage floors: every package listed in scripts/cover_floors.txt must
# stay at or above its floor.
cover:
	sh scripts/check_cover.sh

# Fuzz smoke: every fuzz target gets FUZZTIME (default 10s) of
# coverage-guided fuzzing on top of its seed corpus.
fuzz-smoke:
	sh scripts/fuzz_smoke.sh

# Parallel-pipeline micro-benchmarks (worker-count sweep).
bench:
	$(GO) test -run xxx -bench 'BenchmarkParallel' -benchmem .

# Profile hot-path micro-benchmarks with allocation tracking: the
# zero-allocation tokenizer, the intern table, and the counted profile
# path against the pre-interning reference implementation.
bench-profile:
	$(GO) test -run xxx -bench 'BenchmarkTokenize|BenchmarkIntern|BenchmarkProfile' -benchmem \
		./internal/tokenize ./internal/intern ./internal/cluster

# Regenerate BENCH_pipeline.json (serial-vs-parallel stage timings).
pipeline:
	$(GO) run ./cmd/clxbench -exp pipeline

# Regenerate BENCH_profile.json (counted-profile phase breakdown,
# rows/sec, allocs/row, distinct-pattern ratio, incremental-append
# speedup; GOMAXPROCS pinned per worker count).
profile:
	$(GO) run ./cmd/clxbench -exp profile

# Bench regression check (optional; not part of `gate` — medians on shared
# hardware are too noisy to gate merges on): re-measure the profile
# experiment and fail if rows/sec lands more than 15% below the checked-in
# BENCH_profile.json for any worker count.
bench-check:
	$(GO) run ./cmd/clxbench -exp profile -profile-out '' -profile-baseline BENCH_profile.json

# Regenerate BENCH_store.json (program registry: synthesize-and-register
# vs apply-by-id, cold vs warm matcher cache).
bench-store:
	$(GO) run ./cmd/clxbench -exp store

# Regenerate BENCH_stream.json (streaming bulk apply vs in-memory
# Transform: rows/sec and allocs/row at 10k/100k/1M rows, workers 1/2/4/8).
bench-stream:
	$(GO) run ./cmd/clxbench -exp stream

# Regenerate BENCH_obs.json (observability-layer overhead: instrumented vs
# metrics-frozen pipeline and streaming apply on the 20k-row corpus).
bench-obs:
	$(GO) run ./cmd/clxbench -exp obs

# Regenerate BENCH_apply.json (byte-automaton vs backtracking reference
# apply engine: streamed rows/sec and allocs/row at 10k/100k/1M rows,
# workers 1/4/8, median of 5).
bench-apply:
	$(GO) run ./cmd/clxbench -exp apply

# Metrics-overhead smoke: the instrumented pipeline must stay within 5% of
# the metrics-frozen baseline (clxbench exits non-zero past the budget).
# The report lands in a scratch file so the committed BENCH_obs.json only
# changes when bench-obs is run deliberately.
obs-smoke:
	$(GO) run ./cmd/clxbench -exp obs -obs-out /tmp/BENCH_obs_smoke.json

# Load-harness smoke: a fixed-seed open-loop run from internal/loadgen
# against the in-process daemon handler — zero transport errors, every
# arrival accounted for as 200 or 429, generous p99 budget. Keeps the
# load harness and the daemon API from drifting apart.
load-smoke:
	$(GO) test -race -count=1 -run 'TestLoadSmoke' ./internal/daemon

# Cluster smoke: a fixed workload through an in-process 2-node cluster
# (leader + WAL-replicated follower behind the routing proxy), reconciled
# counter-by-counter — replication ships vs applies, proxy picks vs
# requests, per-node admission decisions vs observed 200/429s — all
# exact, under the race detector.
cluster-smoke:
	$(GO) test -race -count=1 -run 'TestClusterSmoke' ./internal/fleet

# Session smoke: the full stateful-session loop over HTTP — create,
# clusters, append, label, ranked repair candidates, pick, commit —
# ending in byte-parity between the committed program's
# /v1/programs/{id}/apply output and the library path, plus exact
# session-counter conservation in /v1/stats, under the race detector.
session-smoke:
	$(GO) test -race -count=1 -run 'TestSessionSmoke|TestClusterSessionLoop' \
		./internal/daemon ./internal/fleet

# Cluster parity, full matrix: every routing policy × node count {1,2,4}
# over the whole benchmark suite, asserting byte-identical apply and
# apply/stream responses against a single-node reference, plus the fault
# suite (follower killed mid-replication, routed node killed mid-stream).
# Not part of `gate` — minutes, not seconds; run before replication or
# routing changes merge.
cluster-parity:
	CLX_CLUSTER_PARITY=full $(GO) test -race -count=1 -timeout 1800s \
		-run 'TestCluster' .

# Regenerate BENCH_load.json: build the daemon, then let clxload spawn it
# per phase — a 3-rate sweep (median of 3), a knee search for the p99 SLO,
# and the semaphore-vs-tokenbucket A/B under bursty stream-only arrivals
# with exact 200/429 reconciliation against /v1/stats.
bench-load:
	$(GO) build -o /tmp/clxd-bench ./cmd/clxd
	$(GO) run ./cmd/clxload -clxd /tmp/clxd-bench -rates 100,200,400 \
		-duration 3s -reps 3 -max-streams 4 \
		-knee -slo-p99 250ms -knee-hi 6400 \
		-ab -ab-rate 3000 -out BENCH_load.json
