# Test tiers. Tier-1 is the gate every change must keep green; the race
# tier additionally runs go vet and the full suite under the race
# detector, which exercises the parallel pipeline (internal/parallel,
# the rematch compile cache, and the sharded cluster/synth/transform
# paths) with worker counts > 1.

GO ?= go

.PHONY: test race bench pipeline bench-store

# Tier-1: build + unit tests (ROADMAP.md contract).
test:
	$(GO) build ./... && $(GO) test ./...

# Race tier: static checks + race-detector run of every package,
# including the worker-count determinism suite.
race:
	$(GO) vet ./... && $(GO) test -race ./...

# Parallel-pipeline micro-benchmarks (worker-count sweep).
bench:
	$(GO) test -run xxx -bench 'BenchmarkParallel' -benchmem .

# Regenerate BENCH_pipeline.json (serial-vs-parallel stage timings).
pipeline:
	$(GO) run ./cmd/clxbench -exp pipeline

# Regenerate BENCH_store.json (program registry: synthesize-and-register
# vs apply-by-id, cold vs warm matcher cache).
bench-store:
	$(GO) run ./cmd/clxbench -exp store
