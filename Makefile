# Test tiers. Tier-1 is the gate every change must keep green; the race
# tier additionally runs the full suite under the race detector, which
# exercises the parallel pipeline (internal/parallel, the rematch compile
# cache, the intern table, and the sharded cluster/synth/transform paths)
# with worker counts > 1.

GO ?= go

.PHONY: test race bench bench-profile pipeline profile bench-store

# Tier-1: vet + build + unit tests (ROADMAP.md contract).
test:
	$(GO) vet ./... && $(GO) build ./... && $(GO) test ./...

# Race tier: race-detector run of every package, including the
# worker-count determinism suite.
race:
	$(GO) vet ./... && $(GO) test -race ./...

# Parallel-pipeline micro-benchmarks (worker-count sweep).
bench:
	$(GO) test -run xxx -bench 'BenchmarkParallel' -benchmem .

# Profile hot-path micro-benchmarks with allocation tracking: the
# zero-allocation tokenizer, the intern table, and the counted profile
# path against the pre-interning reference implementation.
bench-profile:
	$(GO) test -run xxx -bench 'BenchmarkTokenize|BenchmarkIntern|BenchmarkProfile' -benchmem \
		./internal/tokenize ./internal/intern ./internal/cluster

# Regenerate BENCH_pipeline.json (serial-vs-parallel stage timings).
pipeline:
	$(GO) run ./cmd/clxbench -exp pipeline

# Regenerate BENCH_profile.json (counted-profile phase breakdown,
# rows/sec, allocs/row, distinct-pattern ratio).
profile:
	$(GO) run ./cmd/clxbench -exp profile

# Regenerate BENCH_store.json (program registry: synthesize-and-register
# vs apply-by-id, cold vs warm matcher cache).
bench-store:
	$(GO) run ./cmd/clxbench -exp store
