// Package clx implements CLX ("clicks"), the Cluster–Label–Transform
// paradigm for verifiable programming-by-example data transformation
// (Jin et al., "CLX: Towards verifiable PBE data transformation", 2019).
//
// A CLX session proceeds in three phases:
//
//  1. Cluster — the input column is profiled into a hierarchy of pattern
//     clusters (NewSession), so the user verifies at the pattern level
//     instead of record by record;
//  2. Label — the user picks the desired target pattern (Session.Label),
//     either one of the discovered patterns or a manually specified one;
//  3. Transform — CLX synthesizes a UniFi program, rendered as regular
//     expression Replace operations anyone can read
//     (Transformation.Replaces), applies it (Transformation.Run), and
//     offers ranked alternative plans for one-click repair
//     (Transformation.Repair).
//
// Quick start:
//
//	sess := clx.NewSession([]string{"(734) 645-8397", "734.236.3466", "734-422-8073"})
//	for _, c := range sess.Clusters() {
//		fmt.Println(c.Pattern, c.Count, c.Sample)
//	}
//	tr, _ := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
//	fmt.Println(tr.Explain())  // numbered Replace operations (paper Fig. 4)
//	out, flagged := tr.Run()   // transformed column + unmatched row indices
//	_, _ = out, flagged
package clx

import (
	"fmt"
	"sort"
	"time"

	"clx/internal/cluster"
	"clx/internal/obs"
	"clx/internal/parallel"
	"clx/internal/pattern"
	"clx/internal/rematch"
	"clx/internal/replace"
	"clx/internal/synth"
	"clx/internal/unifi"
)

// Pipeline stage latency histograms — one series per phase of the
// Cluster–Label–Transform loop, plus the saved-program bulk apply. The
// quantitative-PBE signal an operator watches: profile cost tracks input
// shape, synthesize cost tracks format diversity, transform/apply cost is
// the serving hot path.
var (
	obsProfileDur = obs.NewHistogram("clx_stage_duration_seconds",
		"Latency of one pipeline stage.", nil, "stage", "profile")
	obsSynthDur = obs.NewHistogram("clx_stage_duration_seconds",
		"Latency of one pipeline stage.", nil, "stage", "synthesize")
	obsTransformDur = obs.NewHistogram("clx_stage_duration_seconds",
		"Latency of one pipeline stage.", nil, "stage", "transform")
	obsApplyDur = obs.NewHistogram("clx_stage_duration_seconds",
		"Latency of one pipeline stage.", nil, "stage", "apply")
)

// Profile-index counters: which execution plan profiling took (the sharded
// distinct-value index vs the serial counted scan), how much data it
// chewed through, and how much arrived incrementally via
// Session.AppendAndReprofile. One set of atomics serves both surfaces —
// clxd GET /v1/stats reports them as the ProfileIndexCounters JSON
// document and GET /metrics exposes the same series (clx_profile_*).
var (
	obsProfileRuns = obs.NewCounter("clx_profile_runs_total",
		"Completed profile passes (initial sessions and incremental re-profiles).")
	obsProfileSharded = obs.NewCounter("clx_profile_sharded_runs_total",
		"Profile passes that ran on the sharded distinct-value index plan.")
	obsProfileIncremental = obs.NewCounter("clx_profile_incremental_runs_total",
		"Incremental re-profiles via Session.AppendAndReprofile.")
	obsProfileRows = obs.NewCounter("clx_profile_rows_total",
		"Rows covered by completed profile passes (full column per pass).")
	obsProfileAppended = obs.NewCounter("clx_profile_appended_rows_total",
		"Rows appended to live sessions via Session.AppendAndReprofile.")
	obsProfileDistinct = obs.NewCounter("clx_profile_distinct_values_total",
		"Distinct values across completed profile passes.")
)

// ProfileIndexCounters is a snapshot of the process-wide profiling
// counters: every profile pass since process start, split by execution
// plan, plus the row volume the passes covered. Sharded counts passes on
// the mergeable distinct-value index; Incremental counts re-profiles of
// appended data, which reuse the index instead of re-profiling from
// scratch.
type ProfileIndexCounters struct {
	Profiles            int64 `json:"profiles"`
	ShardedProfiles     int64 `json:"sharded_profiles"`
	IncrementalProfiles int64 `json:"incremental_profiles"`
	RowsProfiled        int64 `json:"rows_profiled"`
	AppendedRows        int64 `json:"appended_rows"`
	DistinctValues      int64 `json:"distinct_values"`
}

// ProfileIndexStats returns a snapshot of the process-wide profile-index
// counters (clxd serves it under GET /v1/stats).
func ProfileIndexStats() ProfileIndexCounters {
	return ProfileIndexCounters{
		Profiles:            obsProfileRuns.Value(),
		ShardedProfiles:     obsProfileSharded.Value(),
		IncrementalProfiles: obsProfileIncremental.Value(),
		RowsProfiled:        obsProfileRows.Value(),
		AppendedRows:        obsProfileAppended.Value(),
		DistinctValues:      obsProfileDistinct.Value(),
	}
}

// recordProfile folds one completed profile pass into the process
// counters.
func recordProfile(st *cluster.Stats, incremental bool, appended int) {
	obsProfileRuns.Inc()
	if st.Sharded {
		obsProfileSharded.Inc()
	}
	if incremental {
		obsProfileIncremental.Inc()
		obsProfileAppended.Add(int64(appended))
	}
	obsProfileRows.Add(int64(st.Rows))
	obsProfileDistinct.Add(int64(st.DistinctValues))
}

// Pattern is a CLX data pattern: a sequence of quantified tokens such as
// <D>3'-'<D>3'-'<D>4 (paper §3.1).
type Pattern = pattern.Pattern

// ParsePattern parses the compact pattern notation, e.g.
// "'['<U>+'-'<D>+']'".
func ParsePattern(s string) (Pattern, error) { return pattern.Parse(s) }

// MustParsePattern is ParsePattern but panics on error.
func MustParsePattern(s string) Pattern { return pattern.MustParse(s) }

// ParseNLPattern parses the natural-language regexp display syntax of
// Fig. 4, e.g. "/^{digit}{3}-{digit}{3}-{digit}{4}$/".
func ParseNLPattern(s string) (Pattern, error) { return pattern.ParseNL(s) }

// ParseAnyPattern accepts either notation: the compact form
// ("<D>3'-'<D>4") or the natural-language form ("{digit}{3}-{digit}{4}").
func ParseAnyPattern(s string) (Pattern, error) {
	if p, err := pattern.Parse(s); err == nil {
		return p, nil
	}
	return pattern.ParseNL(s)
}

// PatternOf derives the pattern of a single string by tokenization (§4.1).
func PatternOf(s string) Pattern { return pattern.FromString(s) }

// Options configure a session.
type Options struct {
	// DiscoverConstants enables constant-token discovery (§4.1); on by
	// default.
	DiscoverConstants bool
	// Alternatives is the number of ranked transformation plans kept per
	// source pattern for repair (§6.4).
	Alternatives int
	// Workers bounds the goroutine fan-out of the profile → synthesize →
	// transform pipeline: 0 (the default) uses one worker per CPU, 1
	// reproduces the serial execution exactly. Results — cluster order,
	// plan ranking, transformed rows, flagged indices — are byte-identical
	// for every worker count (see DESIGN.md §7).
	Workers int
}

// DefaultOptions returns the prototype configuration.
func DefaultOptions() Options {
	return Options{DiscoverConstants: true, Alternatives: synth.DefaultOptions().K}
}

func (o Options) clusterOptions() cluster.Options {
	co := cluster.DefaultOptions()
	co.DiscoverConstants = o.DiscoverConstants
	co.Workers = o.Workers
	return co
}

func (o Options) synthOptions() synth.Options {
	so := synth.DefaultOptions()
	if o.Alternatives > 0 {
		so.K = o.Alternatives
	}
	so.Workers = o.Workers
	return so
}

// Cluster is one pattern cluster of the profiled input.
type Cluster struct {
	// Pattern is the cluster's pattern, e.g. '('<D>3')'' '<D>3'-'<D>4.
	Pattern Pattern
	// Count is the number of rows in the cluster.
	Count int
	// Sample is the first member row.
	Sample string
	// Rows are the member row indices.
	Rows []int
}

// Session is a Cluster–Label–Transform session over one column of data.
//
// A Session is not goroutine-safe: callers that share one across
// goroutines (the clxd session endpoints do) must serialize access —
// internal/sessionstore holds one mutex per live session for exactly
// this.
type Session struct {
	// data is the session-owned column: NewSession copies the caller's
	// slice in and Data copies out, so no external code ever aliases it.
	// It is the same backing slice as h.Data at all times.
	data  []string
	opts  Options
	h     *cluster.Hierarchy
	stats ProfileStats
	// ix is the sharded incremental profile index, created lazily by the
	// first AppendAndReprofile; later appends reuse it so re-profiling
	// costs O(appended rows), not O(column).
	ix *cluster.Index
	// gen counts the column-changing re-profiles: it starts at 0 and
	// advances once per non-empty AppendAndReprofile. Transformations
	// record the generation they were labeled at (Transformation.Stale
	// compares the two).
	gen uint64
}

// ProfileStats describes the work the Cluster phase did: input and
// deduplicated sizes, the leaf pattern count, and the per-phase wall time.
// The distinct/rows ratio is the lever behind counted profiling — a
// dup-heavy column tokenizes each value once, not once per row.
type ProfileStats struct {
	// Rows is the input column size; DistinctValues the deduplicated size.
	Rows, DistinctValues int
	// LeafPatterns is the number of initial (level-0) pattern clusters.
	LeafPatterns int
	// Phase wall times for the profile stages.
	Index, Tokenize, Group, Constants, Refine time.Duration
	// Sharded reports whether profiling ran on the sharded mergeable
	// distinct-value index (true) or the serial counted scan (false);
	// output is byte-identical either way.
	Sharded bool
}

// profileStatsOf converts the cluster-layer stats to the public mirror.
func profileStatsOf(st *cluster.Stats) ProfileStats {
	return ProfileStats{
		Rows:           st.Rows,
		DistinctValues: st.DistinctValues,
		LeafPatterns:   st.LeafPatterns,
		Index:          st.Index,
		Tokenize:       st.Tokenize,
		Group:          st.Group,
		Constants:      st.Constants,
		Refine:         st.Refine,
		Sharded:        st.Sharded,
	}
}

// NewSession profiles data into pattern clusters (the Cluster phase).
// The input slice is copied: mutating it afterwards never changes what
// the session profiles (strings themselves are immutable).
func NewSession(data []string, opts ...Options) *Session {
	defer func(t0 time.Time) { obsProfileDur.Observe(time.Since(t0)) }(time.Now())
	o := DefaultOptions()
	if len(opts) > 0 {
		o = opts[0]
	}
	owned := append([]string(nil), data...)
	h, st := cluster.ProfileWithStats(owned, o.clusterOptions())
	recordProfile(st, false, 0)
	return &Session{data: owned, opts: o, h: h, stats: profileStatsOf(st)}
}

// AppendAndReprofile appends rows to the session's column and re-profiles
// it incrementally: the first call builds the session's sharded
// distinct-value index from the existing column (one full indexing pass);
// every later call folds only the appended rows into the per-shard counts,
// tokenizing and interning just the values the session has never seen, and
// re-runs only grouping and refinement — so a small append re-profiles an
// order of magnitude faster than profiling the grown column from scratch.
// The resulting clusters, hierarchy, and stats are byte-identical to
// NewSession over the concatenated column.
//
// Transformations synthesized before the append keep operating on the
// column snapshot they were labeled against; call Label again to
// synthesize over the grown column. The updated ProfileStats (whose Index
// and Tokenize phases cover only the appended rows' work) is returned.
func (s *Session) AppendAndReprofile(rows []string) ProfileStats {
	// An empty append changes nothing: return the current stats without
	// building the index, re-running any profile phase, or counting a
	// profile pass. (The first-call indexing pass is paid by the first
	// append that actually carries rows.)
	if len(rows) == 0 {
		return s.stats
	}
	defer func(t0 time.Time) { obsProfileDur.Observe(time.Since(t0)) }(time.Now())
	if s.ix == nil {
		s.ix = cluster.NewIndex(s.opts.clusterOptions())
		s.ix.Add(s.data)
	}
	s.ix.Add(rows)
	h, st := s.ix.ProfileWithStats()
	recordProfile(st, true, len(rows))
	s.h = h
	s.data = h.Data
	s.stats = profileStatsOf(st)
	s.gen++
	return s.stats
}

// ProfileStats reports how much work profiling this session's column took.
func (s *Session) ProfileStats() ProfileStats { return s.stats }

// Data returns a copy of the session's current column. Together with the
// input copy NewSession takes, the copy keeps callers from aliasing
// session-internal state: mutating the returned slice — or the slice
// originally passed to NewSession — never changes what the session
// profiles or transforms.
func (s *Session) Data() []string { return append([]string(nil), s.data...) }

// Generation reports how many times the session's column has changed:
// 0 at NewSession, +1 per non-empty AppendAndReprofile. A Transformation
// records the generation it was labeled at; comparing the two is how the
// session API detects transformations operating on a stale snapshot.
func (s *Session) Generation() uint64 { return s.gen }

// Clusters returns the leaf pattern clusters in first-seen order — the
// pattern list shown to the user (paper Fig. 3).
func (s *Session) Clusters() []Cluster {
	out := make([]Cluster, 0, len(s.h.Clusters))
	for _, c := range s.h.Clusters {
		out = append(out, Cluster{
			Pattern: c.Pattern, Count: c.Count(), Sample: c.Sample, Rows: c.Rows,
		})
	}
	return out
}

// Level returns the pattern clusters of one hierarchy level (0 = leaves,
// 3 = most generic; paper Fig. 6).
func (s *Session) Level(level int) []Cluster {
	if level < 0 || level >= len(s.h.Levels) {
		return nil
	}
	var out []Cluster
	for _, n := range s.h.Levels[level] {
		c := Cluster{Pattern: n.Pattern, Count: n.Rows()}
		for _, leaf := range n.Leaves {
			c.Rows = append(c.Rows, leaf.Rows...)
		}
		if len(c.Rows) > 0 {
			c.Sample = s.data[c.Rows[0]]
		}
		out = append(out, c)
	}
	return out
}

// Levels returns the number of hierarchy levels (4 in the prototype).
func (s *Session) Levels() int { return len(s.h.Levels) }

// Label selects the target pattern and synthesizes the transformation (the
// Label and Transform phases). The target is usually one of the discovered
// patterns — possibly from a higher hierarchy level — or a manually
// written pattern. An error is returned only for an empty target on
// non-empty data.
func (s *Session) Label(target Pattern) (*Transformation, error) {
	if target.IsEmpty() && len(s.data) > 0 {
		return nil, fmt.Errorf("clx: empty target pattern")
	}
	t0 := time.Now()
	res := synth.Synthesize(s.h, target, s.opts.synthOptions())
	obsSynthDur.Observe(time.Since(t0))
	return &Transformation{sess: s, data: s.h.Data, res: res, gen: s.gen}, nil
}

// Transformation is a synthesized data pattern transformation: a UniFi
// program presented as regexp Replace operations, with ranked alternatives
// for repair.
type Transformation struct {
	sess *Session
	// data is the column snapshot the transformation was labeled against;
	// the session may grow past it via AppendAndReprofile.
	data []string
	res  *synth.Result
	// gen is the session generation at Label time (see Stale).
	gen uint64
	// guards holds content-conditional overrides keyed by source pattern
	// (RepairWithExamples).
	guards map[string][]unifi.GuardedCase
}

// Generation returns the session generation this transformation was
// labeled at.
func (t *Transformation) Generation() uint64 { return t.gen }

// Stale reports whether the session's column has grown past the snapshot
// this transformation was labeled against (a non-empty AppendAndReprofile
// happened after Label). A stale transformation still runs over its
// snapshot — that contract is pinned by
// TestTransformationSnapshotSurvivesAppend — but API layers should
// surface the condition instead of silently transforming old data: the
// clxd session endpoints answer repair and commit on a stale
// transformation with a documented 409, and the fix is to call
// Session.Label again, re-synthesizing over the grown column.
func (t *Transformation) Stale() bool { return t.gen != t.sess.gen }

// Target returns the labeled target pattern.
func (t *Transformation) Target() Pattern { return t.res.Target }

// Sources returns the source patterns the program covers, in synthesis
// order.
func (t *Transformation) Sources() []Pattern {
	out := make([]Pattern, len(t.res.Sources))
	for i, s := range t.res.Sources {
		out[i] = s.Source
	}
	return out
}

// Replaces returns the program as Replace operations (paper Fig. 4), one
// per source pattern — or one per guarded case for sources repaired with
// examples, each annotated with its condition.
func (t *Transformation) Replaces() replace.Program {
	var out replace.Program
	for _, c := range t.guardedProgram().Cases {
		op := replace.ExplainCase(unifi.Case{Source: c.Source, Plan: c.Plan})
		if c.Guard != nil {
			op.Where = c.Guard.String()
		}
		out = append(out, op)
	}
	return out
}

// Explain renders the numbered Replace-operation list shown to the user.
func (t *Transformation) Explain() string { return t.Replaces().String() }

// ExplainWithPreview renders the Replace operations with a per-operation
// before/after preview table sampled from the session's data (paper
// Fig. 8), perOp rows each.
func (t *Transformation) ExplainWithPreview(perOp int) string {
	return t.Replaces().PreviewTable(t.data, perOp)
}

// Program returns the underlying UniFi program.
func (t *Transformation) Program() unifi.Program { return t.res.Program() }

// Alternatives returns the ranked alternative plans for source i as
// Replace operations, best first; Alternatives(i)[0] is the plan in effect
// by default.
func (t *Transformation) Alternatives(i int) []replace.Op {
	if i < 0 || i >= len(t.res.Sources) {
		return nil
	}
	src := t.res.Sources[i]
	out := make([]replace.Op, len(src.Plans))
	for j, r := range src.Plans {
		out[j] = replace.ExplainCase(unifi.Case{Source: src.Source, Plan: r.Plan})
	}
	return out
}

// Repair replaces source i's plan with its j-th ranked alternative (§6.4).
func (t *Transformation) Repair(i, j int) error { return t.res.Repair(i, j) }

// Refine drills into source i's child patterns when none of its plans is
// right: the source is replaced by one entry per solvable child pattern,
// each with its own ranked plans (the hierarchy affordance of §4.2).
func (t *Transformation) Refine(i int) error { return t.res.Refine(i) }

// RepairWithExamples resolves a content conditional — the §7.4 extension
// for formats where the right transformation depends on a token's value
// ("picture 001" vs "invoice 001"), which no single pattern-level plan can
// express. The examples map inputs of one format to their desired outputs;
// CLX derives the format's pattern, finds the discriminating token, and
// installs one guarded plan per value group (replacing the format's
// unconditional plan if it had one). Inputs of the format carrying a
// keyword outside the example groups are left unmatched (flagged on Run).
func (t *Transformation) RepairWithExamples(examples map[string]string) error {
	if len(examples) < 2 {
		return fmt.Errorf("clx: need at least two examples, got %d", len(examples))
	}
	ins := make([]string, 0, len(examples))
	for in := range examples {
		ins = append(ins, in)
	}
	sort.Strings(ins)
	// The examples must share one format; its '+'-generalization is the
	// guarded source pattern.
	src := cluster.Generalize(pattern.FromString(ins[0]), cluster.QuantToPlus)
	wants := make([]string, len(ins))
	for k, in := range ins {
		if !src.Matches(in) {
			return fmt.Errorf("clx: example inputs mix formats: %q does not match %s", in, src)
		}
		wants[k] = examples[in]
	}
	cases, ok := synth.ConditionalSplit(src, ins, wants, t.sess.opts.synthOptions())
	if !ok {
		return fmt.Errorf("clx: no conditional split covers the examples for source %s", src)
	}
	if t.guards == nil {
		t.guards = make(map[string][]unifi.GuardedCase)
	}
	t.guards[src.Key()] = cases
	return nil
}

// guardedProgram assembles the program with any guarded overrides: guarded
// cases replace same-pattern unconditional sources and otherwise extend the
// program.
func (t *Transformation) guardedProgram() unifi.GuardedProgram {
	var gp unifi.GuardedProgram
	used := make(map[string]bool)
	for _, s := range t.res.Sources {
		if cases, ok := t.guards[s.Source.Key()]; ok {
			gp.Cases = append(gp.Cases, cases...)
			used[s.Source.Key()] = true
			continue
		}
		gp.Cases = append(gp.Cases, unifi.GuardedCase{Source: s.Source, Plan: s.Plan()})
	}
	var extra []string
	for k := range t.guards {
		if !used[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		gp.Cases = append(gp.Cases, t.guards[k]...)
	}
	return gp
}

// Run applies the transformation to the session's column. Rows already in
// the target pattern are untouched; rows matching no source candidate (or,
// for guarded sources, carrying an unknown keyword) are copied through and
// their indices returned in flagged for review (§6.1).
func (t *Transformation) Run() (out []string, flagged []int) {
	defer func(t0 time.Time) { obsTransformDur.Observe(time.Since(t0)) }(time.Now())
	if len(t.guards) == 0 {
		return t.res.Transform()
	}
	prog := t.guardedProgram()
	target := rematch.CompileCached(t.res.Target.Tokens())
	data := t.data
	out = make([]string, len(data))
	flagged = parallel.Gather(t.sess.opts.Workers, len(data), func(lo, hi int, emit func(int)) {
		for i := lo; i < hi; i++ {
			s := data[i]
			if target.Matches(s) {
				out[i] = s
				continue
			}
			v, err := prog.Apply(s)
			if err != nil {
				out[i] = s
				emit(i)
				continue
			}
			out[i] = v
		}
	})
	return out, flagged
}

// Apply transforms a single new string. ok is false when the string matches
// neither the target (left as is) nor any applicable source pattern.
func (t *Transformation) Apply(s string) (string, bool) {
	if t.res.Target.Matches(s) {
		return s, true
	}
	var (
		out string
		err error
	)
	if len(t.guards) == 0 {
		out, err = t.res.Program().Apply(s)
	} else {
		out, err = t.guardedProgram().Apply(s)
	}
	if err != nil {
		return s, false
	}
	return out, true
}

// Unmatched returns the input rows covered by no source candidate.
func (t *Transformation) Unmatched() []int { return t.res.UnmatchedRows }

// Clean returns the input rows that already match the target pattern.
func (t *Transformation) Clean() []int { return t.res.CleanRows }
