package clx_test

import (
	"fmt"

	clx "clx"
)

// Profiling a column shows the format inventory — the paper's Figure 3
// view.
func ExampleSession_Clusters() {
	sess := clx.NewSession([]string{
		"(734) 645-8397", "(313) 263-1192", "734-422-8073", "734.236.3466",
	})
	for _, c := range sess.Clusters() {
		fmt.Printf("%s  %d rows\n", c.Pattern, c.Count)
	}
	// Output:
	// '('<D>3')'' '<D>3'-'<D>4  2 rows
	// <D>3'-'<D>3'-'<D>4  1 rows
	// <D>3'.'<D>3'.'<D>4  1 rows
}

// Labeling a target pattern synthesizes the transformation as readable
// Replace operations — the paper's Figure 4 view.
func ExampleSession_Label() {
	sess := clx.NewSession([]string{"(734) 645-8397", "734-422-8073"})
	tr, _ := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
	fmt.Print(tr.Explain())
	// Output:
	// 1 Replace /^\(({digit}{3})\) ({digit}{3}\-{digit}{4})$/ in column with '$1-$2'
}

// Targets can be written in the natural-language display syntax too.
func ExampleParseNLPattern() {
	p, _ := clx.ParseNLPattern("/^[{upper}+-{digit}+]$/")
	fmt.Println(p)
	fmt.Println(p.Matches("[CPT-115]"))
	// Output:
	// '['<U>+'-'<D>+']'
	// true
}

// Ambiguous transformations are repaired by choosing a ranked alternative
// (paper §6.4): here the default keeps the field order of a date, the
// alternative swaps day and month.
func ExampleTransformation_Repair() {
	sess := clx.NewSession([]string{"31/12/2019", "28/02/2020", "12-31-2019"})
	tr, _ := sess.Label(clx.MustParsePattern("<D>2'-'<D>2'-'<D>4"))
	out, _ := tr.Run()
	fmt.Println("default:", out[0])
	_ = tr.Repair(0, 1)
	out, _ = tr.Run()
	fmt.Println("repaired:", out[0])
	// Output:
	// default: 31-12-2019
	// repaired: 12-31-2019
}

// Rows matching no known format are never touched — they come back
// unchanged and flagged for review (paper §6.1).
func ExampleTransformation_Run() {
	sess := clx.NewSession([]string{"734.236.3466", "N/A"})
	tr, _ := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
	out, flagged := tr.Run()
	fmt.Println(out[0])
	fmt.Println(out[1], flagged)
	// Output:
	// 734-236-3466
	// N/A [1]
}

// Content conditionals — where the right output depends on a token's value
// — are resolved with a handful of examples (§7.4 extension).
func ExampleTransformation_RepairWithExamples() {
	sess := clx.NewSession([]string{
		"picture 001", "invoice 001", "picture 002", "invoice 002", "PIC-777",
	})
	tr, _ := sess.Label(clx.MustParsePattern("<U>+'-'<D>+"))
	_ = tr.RepairWithExamples(map[string]string{
		"picture 001": "PIC-001", "picture 002": "PIC-002",
		"invoice 001": "DOC-001", "invoice 002": "DOC-002",
	})
	out, _ := tr.Apply("invoice 042")
	fmt.Println(out)
	// Output:
	// DOC-042
}
