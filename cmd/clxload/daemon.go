// Daemon lifecycle for self-driving runs: clxload can spawn the clxd
// binary it is told about (-clxd), wait for /healthz, and tear it down
// with SIGTERM when the measurement is done. The A/B mode depends on
// this — comparing admission policies honestly means restarting the
// daemon per policy so each starts from zero counters and an empty
// bucket, not flipping a flag on a warm process.
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"syscall"
	"time"
)

// daemonConfig is everything a spawned clxd run varies.
type daemonConfig struct {
	// Binary is the clxd executable path (-clxd).
	Binary string
	// MaxStreams, Policy, Rate, Burst map to -max-streams, -admission,
	// -admission-rate, -admission-burst.
	MaxStreams int
	Policy     string
	Rate       float64
	Burst      float64
}

// daemon is a running clxd child process.
type daemon struct {
	cmd     *exec.Cmd
	BaseURL string
}

// freePort asks the kernel for an unused TCP port on loopback.
func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

// startDaemon launches clxd on a free loopback port and blocks until
// /healthz answers (or a 10s deadline passes and the child is killed).
func startDaemon(cfg daemonConfig) (*daemon, error) {
	port, err := freePort()
	if err != nil {
		return nil, fmt.Errorf("clxload: no free port: %w", err)
	}
	addr := "127.0.0.1:" + strconv.Itoa(port)
	args := []string{
		"-addr", addr,
		"-max-streams", strconv.Itoa(cfg.MaxStreams),
		"-admission", cfg.Policy,
		"-admission-rate", strconv.FormatFloat(cfg.Rate, 'f', -1, 64),
		"-admission-burst", strconv.FormatFloat(cfg.Burst, 'f', -1, 64),
	}
	cmd := exec.Command(cfg.Binary, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr // daemon logs are useful when a run goes sideways
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("clxload: start %s: %w", cfg.Binary, err)
	}
	d := &daemon{cmd: cmd, BaseURL: "http://" + addr}
	if err := waitHealthy(d.BaseURL, 10*time.Second); err != nil {
		d.Stop()
		return nil, err
	}
	return d, nil
}

// waitHealthy polls GET /healthz until it returns 200.
func waitHealthy(baseURL string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: time.Second}
	for time.Now().Before(deadline) {
		resp, err := client.Get(baseURL + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("clxload: daemon at %s never became healthy", baseURL)
}

// Stop terminates the daemon: SIGTERM for the graceful path (it flushes
// the registry WAL), escalating to SIGKILL after 5s.
func (d *daemon) Stop() {
	if d.cmd.Process == nil {
		return
	}
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		_ = d.cmd.Process.Kill()
		<-done
	}
}

// admissionSnapshot is the /v1/stats admission section clxload
// reconciles against.
type admissionSnapshot struct {
	Policy            string `json:"policy"`
	Admitted          int64  `json:"admitted"`
	Rejected          int64  `json:"rejected"`
	InFlight          int64  `json:"in_flight"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}

// fetchAdmissionStats reads the admission counters from /v1/stats.
func fetchAdmissionStats(client *http.Client, baseURL string) (admissionSnapshot, error) {
	var payload struct {
		Admission admissionSnapshot `json:"admission"`
	}
	resp, err := client.Get(baseURL + "/v1/stats")
	if err != nil {
		return admissionSnapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return admissionSnapshot{}, fmt.Errorf("clxload: /v1/stats status %d", resp.StatusCode)
	}
	if err := jsonDecode(resp.Body, &payload); err != nil {
		return admissionSnapshot{}, fmt.Errorf("clxload: /v1/stats decode: %w", err)
	}
	return payload.Admission, nil
}
