// clxload harness tests against a stub daemon: flag-shape parsing, the
// end-to-end run() path (sweep, trace replay, knee search, report file),
// and the /v1/stats decoding the A/B reconciliation depends on. The real
// spawn-a-clxd path is exercised by `make bench-load`; these tests keep
// the harness itself honest without building a second binary.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"clx/internal/loadgen"
)

// stubDaemon fakes the clxd surface clxload touches. It answers every
// op successfully and keeps admission counters so stats reconcile.
type stubDaemon struct {
	admitted, rejected atomic.Int64
	registers          atomic.Int64
}

func (s *stubDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/programs", func(w http.ResponseWriter, r *http.Request) {
		s.registers.Add(1)
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, `{"id":"stub-prog"}`)
	})
	mux.HandleFunc("POST /v1/programs/{id}/apply", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"rows":[]}`)
	})
	mux.HandleFunc("POST /v1/programs/{id}/apply/stream", func(w http.ResponseWriter, r *http.Request) {
		s.admitted.Add(1)
		fmt.Fprint(w, "\"row\"\n{\"done\":true,\"rows\":1}\n")
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"admission":{"policy":"semaphore","admitted":%d,"rejected":%d}}`,
			s.admitted.Load(), s.rejected.Load())
	})
	return mux
}

func startStub(t *testing.T) (*stubDaemon, string) {
	t.Helper()
	stub := &stubDaemon{}
	srv := httptest.NewServer(stub.handler())
	t.Cleanup(srv.Close)
	return stub, srv.URL
}

// baseOptions is a fast, deterministic configuration against addr.
func baseOptions(addr string) cliOptions {
	return cliOptions{
		Addr: addr, Rates: "200,400", Duration: 200 * time.Millisecond,
		Reps: 1, Process: "poisson", Mix: "8:2:1", RowsMin: 5, RowsMax: 20,
		Formats: 6, Seed: 7, Timeout: 5 * time.Second,
		SLOP99: time.Second, MaxStreams: 8, AdmissionRate: 50, Out: "",
	}
}

func TestRunSweepWritesReport(t *testing.T) {
	_, addr := startStub(t)
	opt := baseOptions(addr)
	opt.Out = filepath.Join(t.TempDir(), "BENCH_load.json")
	var sb strings.Builder
	if err := run(opt, &sb); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(opt.Out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, raw)
	}
	if len(rep.Sweep) != 2 {
		t.Fatalf("sweep has %d points, want 2", len(rep.Sweep))
	}
	for _, pt := range rep.Sweep {
		if pt.Median.Errors != 0 || pt.Median.OK == 0 {
			t.Errorf("rate %.0f: median %+v", pt.Rate, pt.Median)
		}
		if pt.Median.Process != "poisson" || pt.Median.OfferedRate != pt.Rate {
			t.Errorf("rate %.0f: process/rate not stamped: %+v", pt.Rate, pt.Median)
		}
	}
	if rep.Provenance.GoVersion == "" || rep.Provenance.GeneratedUTC == "" {
		t.Errorf("provenance not stamped: %+v", rep.Provenance)
	}
	if rep.Config.Seed != 7 || rep.Config.Reps != 1 {
		t.Errorf("config not echoed: %+v", rep.Config)
	}
	if !strings.Contains(sb.String(), "poisson") {
		t.Errorf("console output missing sweep lines:\n%s", sb.String())
	}
}

func TestRunKnee(t *testing.T) {
	_, addr := startStub(t)
	opt := baseOptions(addr)
	opt.Rates = "100"
	opt.Knee = true
	opt.KneeLo, opt.KneeHi = 50, 200
	var sb strings.Builder
	var rep loadReport
	out := filepath.Join(t.TempDir(), "r.json")
	opt.Out = out
	if err := run(opt, &sb); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(out)
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Knee == nil || len(rep.Knee.Points) == 0 {
		t.Fatalf("knee missing from report: %s", raw)
	}
	// The stub answers instantly, so the whole bracket passes: Hi is the
	// reported lower bound.
	if rep.Knee.SaturationRate != 200 {
		t.Errorf("saturation = %v, want 200 (stub faster than bracket)", rep.Knee.SaturationRate)
	}
}

func TestRunTraceReplay(t *testing.T) {
	_, addr := startStub(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.csv")
	if err := os.WriteFile(trace, []byte("offset_ms,op,rows\n0,apply,5\n10,stream,8\n20,apply,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	opt := baseOptions(addr)
	opt.Trace = trace
	opt.Out = filepath.Join(dir, "r.json")
	var sb strings.Builder
	if err := run(opt, &sb); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(opt.Out)
	var rep loadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Sweep) != 1 || rep.Sweep[0].Median.Arrivals != 3 {
		t.Fatalf("trace replay sweep = %+v", rep.Sweep)
	}
	if rep.Sweep[0].Median.Process != "trace" {
		t.Errorf("process = %q, want trace", rep.Sweep[0].Median.Process)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(cliOptions{Rates: "10"}, &strings.Builder{}); err == nil {
		t.Error("no -clxd and no -addr accepted")
	}
	_, addr := startStub(t)
	opt := baseOptions(addr)
	opt.AB = true // AB without -clxd must refuse, not silently skip
	opt.Rates = "50"
	if err := run(opt, &strings.Builder{}); err == nil ||
		!strings.Contains(err.Error(), "-ab needs -clxd") {
		t.Errorf("AB without -clxd: %v", err)
	}
	opt = baseOptions(addr)
	opt.Mix = "bad"
	if err := run(opt, &strings.Builder{}); err == nil {
		t.Error("bad mix accepted")
	}
	opt = baseOptions(addr)
	opt.Rates = "10,5"
	if err := run(opt, &strings.Builder{}); err == nil {
		t.Error("descending rates accepted")
	}
}

func TestParseRates(t *testing.T) {
	got, err := parseRates(" 50, 100 ,200 ")
	if err != nil || len(got) != 3 || got[0] != 50 || got[2] != 200 {
		t.Fatalf("parseRates = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-5", "abc", "100,100", "200,100"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

func TestArrivalsAndTraceRate(t *testing.T) {
	if n := arrivals(100, 2*time.Second); n != 200 {
		t.Errorf("arrivals(100, 2s) = %d", n)
	}
	if n := arrivals(0.1, time.Second); n != 1 {
		t.Errorf("arrivals floor = %d, want 1", n)
	}
	recs := []loadgen.TraceRecord{
		{At: 0, Op: loadgen.OpApply, Rows: 1},
		{At: 500 * time.Millisecond, Op: loadgen.OpApply, Rows: 1},
	}
	if r := traceRate(recs); r != 4 { // 2 arrivals over 0.5s
		t.Errorf("traceRate = %v, want 4", r)
	}
	if r := traceRate(nil); r != 0 {
		t.Errorf("traceRate(nil) = %v", r)
	}
}

func TestFetchAdmissionStats(t *testing.T) {
	stub, addr := startStub(t)
	stub.admitted.Store(5)
	stub.rejected.Store(2)
	snap, err := fetchAdmissionStats(http.DefaultClient, addr)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Admitted != 5 || snap.Rejected != 2 || snap.Policy != "semaphore" {
		t.Errorf("snapshot = %+v", snap)
	}
}
