// Command clxload is the open-loop load-generation and capacity harness
// for clxd: it drives a real daemon over HTTP with seeded arrival
// processes from internal/loadgen and reports what the server actually
// delivered — per-rate p50/p95/p99 latency, goodput in transformed
// rows/s, error and 429 rates — instead of what the client asked for.
//
//	clxload -clxd ./bin/clxd -rates 50,100,200        rate sweep, median of -reps
//	clxload -addr http://127.0.0.1:8080 -rates 100    drive an already-running daemon
//	clxload -clxd ./bin/clxd -knee -slo-p99 250ms     binary-search the saturation rate
//	clxload -clxd ./bin/clxd -ab                      semaphore vs tokenbucket under bursts
//	clxload -clxd ./bin/clxd -trace arrivals.csv      deterministic trace replay
//
// The generator is open-loop: arrivals fire on schedule no matter how
// the server is doing, which is what exposes the queueing cliff a
// closed-loop client hides. Every run is seeded and reproducible; the
// knee mode bisects offered rate for the highest rate whose p99 still
// meets -slo-p99; the A/B mode restarts the daemon once per admission
// policy, replays the identical bursty stream-only schedule against
// both, and reconciles the client-observed 200/429 split exactly
// against the server's admitted/rejected counters from /v1/stats.
// Results land in BENCH_load.json (-out) stamped with build provenance.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"clx/internal/dataset"
	"clx/internal/loadgen"
	"clx/internal/provenance"
)

// loadConfig echoes the knobs of a run into the report, so a committed
// BENCH_load.json is interpretable without the command line that made it.
type loadConfig struct {
	Process    string  `json:"process"`
	Mix        string  `json:"mix"`
	RowsMin    int     `json:"rows_min"`
	RowsMax    int     `json:"rows_max"`
	Formats    int     `json:"formats"`
	Seed       int64   `json:"seed"`
	DurationS  float64 `json:"duration_s"`
	Reps       int     `json:"reps"`
	MaxStreams int     `json:"max_streams"`
	Trace      string  `json:"trace,omitempty"`
}

// rateResult is one sweep point: the median rep plus every rep, so the
// spread is inspectable when a number looks off.
type rateResult struct {
	Rate   float64           `json:"rate"`
	Median loadgen.Summary   `json:"median"`
	Reps   []loadgen.Summary `json:"reps"`
}

// abPolicyResult is one arm of the admission A/B: the run summary plus
// both sides of the accounting. Reconciled is the acceptance criterion —
// server admitted == client 200s and server rejected == client 429s,
// exactly.
type abPolicyResult struct {
	Policy         string          `json:"policy"`
	Summary        loadgen.Summary `json:"summary"`
	ServerAdmitted int64           `json:"server_admitted"`
	ServerRejected int64           `json:"server_rejected"`
	ClientOK       int             `json:"client_ok"`
	Client429      int             `json:"client_429"`
	Reconciled     bool            `json:"reconciled"`
}

// abResult is the full A/B: both policies under the identical bursty
// stream-only schedule.
type abResult struct {
	Process  string           `json:"process"`
	MeanRate float64          `json:"mean_rate"`
	Arrivals int              `json:"arrivals"`
	Policies []abPolicyResult `json:"policies"`
}

// loadReport is BENCH_load.json.
type loadReport struct {
	Provenance provenance.Provenance `json:"provenance"`
	Config     loadConfig            `json:"config"`
	Sweep      []rateResult          `json:"sweep,omitempty"`
	Knee       *loadgen.KneeResult   `json:"knee,omitempty"`
	AB         *abResult             `json:"ab,omitempty"`
}

func main() {
	var (
		clxdBin  = flag.String("clxd", "", "clxd binary to spawn per run (empty: drive -addr instead)")
		addr     = flag.String("addr", "", "base URL of an already-running clxd (ignored when -clxd is set)")
		rates    = flag.String("rates", "50,100,200", "comma-separated arrival rates (req/s) to sweep")
		duration = flag.Duration("duration", 2*time.Second, "schedule length per rep")
		reps     = flag.Int("reps", 3, "repetitions per rate; the median by p99 is reported")
		process  = flag.String("process", "poisson", "arrival process: poisson, fixed, or bursty")
		traceF   = flag.String("trace", "", "CSV trace to replay instead of a rate sweep (offset_ms,op,rows)")
		mixF     = flag.String("mix", "8:2:1", "op mix as apply:stream:register weights")
		rowsMin  = flag.Int("rows-min", 20, "minimum rows per request")
		rowsMax  = flag.Int("rows-max", 200, "maximum rows per request")
		formats  = flag.Int("formats", 6, "phone-format variety per request column (1..6)")
		seed     = flag.Int64("seed", 42, "seed for arrivals, mix draws, and payload bytes")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		sloP99   = flag.Duration("slo-p99", 250*time.Millisecond, "p99 SLO for -knee")
		knee     = flag.Bool("knee", false, "binary-search the saturation rate for -slo-p99")
		kneeLo   = flag.Float64("knee-lo", 0, "knee bracket low rate (0: min of -rates)")
		kneeHi   = flag.Float64("knee-hi", 0, "knee bracket high rate (0: 4 x max of -rates)")
		ab       = flag.Bool("ab", false, "A/B semaphore vs tokenbucket under bursty streams (needs -clxd)")
		abRate   = flag.Float64("ab-rate", 0, "mean arrival rate of the A/B schedule (0: max of -rates)")
		maxStr   = flag.Int("max-streams", 8, "-max-streams for spawned daemons (fixed for reproducibility)")
		admRate  = flag.Float64("admission-rate", 50, "tokenbucket -admission-rate for spawned daemons")
		admBurst = flag.Float64("admission-burst", 0, "tokenbucket -admission-burst (0: clxd default)")
		out      = flag.String("out", "BENCH_load.json", "report path ('' skips writing)")
	)
	flag.Parse()
	if err := run(cliOptions{
		ClxdBin: *clxdBin, Addr: *addr, Rates: *rates, Duration: *duration,
		Reps: *reps, Process: *process, Trace: *traceF, Mix: *mixF,
		RowsMin: *rowsMin, RowsMax: *rowsMax, Formats: *formats, Seed: *seed,
		Timeout: *timeout, SLOP99: *sloP99, Knee: *knee, KneeLo: *kneeLo,
		KneeHi: *kneeHi, AB: *ab, ABRate: *abRate, MaxStreams: *maxStr,
		AdmissionRate: *admRate, AdmissionBurst: *admBurst, Out: *out,
	}, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "clxload:", err)
		os.Exit(1)
	}
}

// cliOptions carries the parsed flags; a struct so tests can drive run
// without a flag set.
type cliOptions struct {
	ClxdBin, Addr  string
	Rates          string
	Duration       time.Duration
	Reps           int
	Process        string
	Trace          string
	Mix            string
	RowsMin        int
	RowsMax        int
	Formats        int
	Seed           int64
	Timeout        time.Duration
	SLOP99         time.Duration
	Knee           bool
	KneeLo, KneeHi float64
	AB             bool
	ABRate         float64
	MaxStreams     int
	AdmissionRate  float64
	AdmissionBurst float64
	Out            string
}

// run is the whole harness behind the flag parse.
func run(opt cliOptions, w io.Writer) error {
	if opt.ClxdBin == "" && opt.Addr == "" {
		return fmt.Errorf("need -clxd (spawn a daemon) or -addr (drive a running one)")
	}
	rates, err := parseRates(opt.Rates)
	if err != nil {
		return err
	}
	mix, err := loadgen.ParseMix(opt.Mix)
	if err != nil {
		return err
	}
	wopts := loadgen.WorkloadOptions{
		Mix:     mix,
		Rows:    loadgen.RowsDist{Min: opt.RowsMin, Max: opt.RowsMax},
		Formats: opt.Formats,
		Seed:    opt.Seed,
	}
	report := loadReport{
		Config: loadConfig{
			Process: opt.Process, Mix: opt.Mix, RowsMin: opt.RowsMin,
			RowsMax: opt.RowsMax, Formats: opt.Formats, Seed: opt.Seed,
			DurationS: opt.Duration.Seconds(), Reps: opt.Reps,
			MaxStreams: opt.MaxStreams, Trace: opt.Trace,
		},
	}

	// One daemon serves the sweep, trace, and knee phases; the A/B spawns
	// its own pair so each policy starts cold.
	tgt, stop, err := acquireTarget(opt, "semaphore")
	if err != nil {
		return err
	}
	runSchedule := func(sched []loadgen.Request) (loadgen.Summary, error) {
		res, err := loadgen.Run(context.Background(), tgt, sched)
		if err != nil {
			return loadgen.Summary{}, err
		}
		return loadgen.Summarize(res), nil
	}

	if opt.Trace != "" {
		// Trace replay: the trace fixes the schedule; rates are ignored.
		f, err := os.Open(opt.Trace)
		if err != nil {
			stop()
			return err
		}
		records, err := loadgen.ReadTrace(f)
		f.Close()
		if err != nil {
			stop()
			return err
		}
		sched := loadgen.ScheduleFromTrace(records, opt.Seed, opt.Formats)
		s, err := runSchedule(sched)
		if err != nil {
			stop()
			return err
		}
		s.Process, s.OfferedRate = "trace", traceRate(records)
		report.Sweep = append(report.Sweep, rateResult{
			Rate: s.OfferedRate, Median: s, Reps: []loadgen.Summary{s},
		})
	} else {
		for _, rate := range rates {
			var repSums []loadgen.Summary
			for rep := 0; rep < opt.Reps; rep++ {
				// Each rep gets its own derived seed, so reps differ while
				// the whole sweep stays a pure function of -seed.
				o := wopts
				o.Seed = opt.Seed + int64(rep)*1009
				sched, err := buildFor(opt.Process, rate, opt.Duration, o)
				if err != nil {
					stop()
					return err
				}
				s, err := runSchedule(sched)
				if err != nil {
					stop()
					return err
				}
				s.Process, s.OfferedRate = opt.Process, rate
				repSums = append(repSums, s)
			}
			med := loadgen.MedianByP99(repSums)
			report.Sweep = append(report.Sweep, rateResult{Rate: rate, Median: med, Reps: repSums})
			printSummary(w, med)
		}
	}

	if opt.Knee {
		lo, hi := opt.KneeLo, opt.KneeHi
		if lo <= 0 {
			lo = rates[0]
		}
		if hi <= 0 {
			hi = 4 * rates[len(rates)-1]
		}
		fmt.Fprintf(w, "\n-- knee search: p99 <= %v over [%.0f, %.0f] req/s --\n", opt.SLOP99, lo, hi)
		kr := loadgen.FindKnee(func(rate float64) loadgen.Summary {
			sched, err := buildFor(opt.Process, rate, opt.Duration, wopts)
			if err != nil {
				return loadgen.Summary{}
			}
			s, err := runSchedule(sched)
			if err != nil {
				return loadgen.Summary{}
			}
			s.Process, s.OfferedRate = opt.Process, rate
			fmt.Fprintf(w, "  probe %8.1f req/s: p99 %8.1fms  429 %5.1f%%  err %5.1f%%\n",
				rate, s.P99MS, 100*s.Rate429, 100*s.ErrorRate)
			return s
		}, loadgen.KneeOptions{TargetP99: opt.SLOP99, Lo: lo, Hi: hi})
		report.Knee = &kr
		fmt.Fprintf(w, "  saturation: %.1f req/s (bracket [%.1f, %.1f])\n",
			kr.SaturationRate, kr.BracketLo, kr.BracketHi)
	}
	stop()

	if opt.AB {
		if opt.ClxdBin == "" {
			return fmt.Errorf("-ab needs -clxd: each policy gets a fresh daemon")
		}
		mean := opt.ABRate
		if mean <= 0 {
			mean = rates[len(rates)-1]
		}
		abr, err := runAB(opt, mean, w)
		if err != nil {
			return err
		}
		report.AB = abr
	}

	report.Provenance = provenance.Collect()
	if opt.Out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(opt.Out, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", opt.Out)
	}
	return nil
}

// acquireTarget resolves where requests go: spawn the -clxd binary under
// the given admission policy, or point at -addr. The returned stop tears
// down a spawned daemon and is a no-op otherwise. Either way the seed
// program is registered and its id is in the target.
func acquireTarget(opt cliOptions, policy string) (loadgen.Target, func(), error) {
	var (
		baseURL string
		stop    = func() {}
	)
	if opt.ClxdBin != "" {
		d, err := startDaemon(daemonConfig{
			Binary: opt.ClxdBin, MaxStreams: opt.MaxStreams,
			Policy: policy, Rate: opt.AdmissionRate, Burst: opt.AdmissionBurst,
		})
		if err != nil {
			return loadgen.Target{}, nil, err
		}
		baseURL, stop = d.BaseURL, d.Stop
	} else {
		baseURL = strings.TrimRight(opt.Addr, "/")
	}
	tgt := loadgen.Target{BaseURL: baseURL, Client: loadgen.NewClient(opt.Timeout)}
	seedRows, _ := dataset.Phones(64, opt.Formats, opt.Seed)
	id, err := loadgen.RegisterSeedProgram(tgt, seedRows)
	if err != nil {
		stop()
		return loadgen.Target{}, nil, fmt.Errorf("seed program: %w", err)
	}
	tgt.ProgramID = id
	return tgt, stop, nil
}

// runAB replays one bursty stream-only schedule against a fresh daemon
// per admission policy and reconciles both sides of the accounting.
func runAB(opt cliOptions, meanRate float64, w io.Writer) (*abResult, error) {
	// Stream-only: admission only guards the streaming path, so apply and
	// register arrivals would dilute the comparison.
	n := arrivals(meanRate, opt.Duration)
	shape := loadgen.DefaultBurstShape(meanRate)
	proc := loadgen.NewBursty(shape.BaseRate, shape.BurstRate, shape.OnDur, shape.OffDur, n, opt.Seed)
	sched := loadgen.BuildSchedule(proc, loadgen.WorkloadOptions{
		Mix:     loadgen.Mix{Stream: 1},
		Rows:    loadgen.RowsDist{Min: opt.RowsMin, Max: opt.RowsMax},
		Formats: opt.Formats,
		Seed:    opt.Seed,
	})
	res := &abResult{Process: "bursty", MeanRate: meanRate, Arrivals: len(sched)}
	fmt.Fprintf(w, "\n-- admission A/B: bursty streams, mean %.0f req/s, %d arrivals --\n", meanRate, len(sched))
	for _, policy := range []string{"semaphore", "tokenbucket"} {
		tgt, stop, err := acquireTarget(opt, policy)
		if err != nil {
			return nil, err
		}
		before, err := fetchAdmissionStats(tgt.Client, tgt.BaseURL)
		if err != nil {
			stop()
			return nil, err
		}
		rr, err := loadgen.Run(context.Background(), tgt, sched)
		if err != nil {
			stop()
			return nil, err
		}
		after, err := fetchAdmissionStats(tgt.Client, tgt.BaseURL)
		stop()
		if err != nil {
			return nil, err
		}
		s := loadgen.Summarize(rr)
		s.Process, s.OfferedRate = "bursty", meanRate
		pr := abPolicyResult{
			Policy:         policy,
			Summary:        s,
			ServerAdmitted: after.Admitted - before.Admitted,
			ServerRejected: after.Rejected - before.Rejected,
			ClientOK:       s.OK,
			Client429:      s.Rejected,
		}
		pr.Reconciled = pr.ServerAdmitted == int64(pr.ClientOK) &&
			pr.ServerRejected == int64(pr.Client429)
		res.Policies = append(res.Policies, pr)
		fmt.Fprintf(w, "  %-11s ok %4d  429 %4d  p99 %8.1fms  goodput %9.0f rows/s  reconciled=%v\n",
			policy, pr.ClientOK, pr.Client429, s.P99MS, s.GoodputRowsPerSec, pr.Reconciled)
		if !pr.Reconciled {
			return nil, fmt.Errorf("%s accounting did not reconcile: server %d/%d vs client %d/%d",
				policy, pr.ServerAdmitted, pr.ServerRejected, pr.ClientOK, pr.Client429)
		}
	}
	return res, nil
}

// buildFor assembles a schedule for the named process at the given rate.
func buildFor(process string, rate float64, d time.Duration, wopts loadgen.WorkloadOptions) ([]loadgen.Request, error) {
	proc, err := loadgen.ProcessFor(process, rate, arrivals(rate, d), wopts.Seed, loadgen.BurstShape{})
	if err != nil {
		return nil, err
	}
	return loadgen.BuildSchedule(proc, wopts), nil
}

// arrivals sizes a schedule to rate/s over d, at least 1.
func arrivals(rate float64, d time.Duration) int {
	n := int(rate*d.Seconds() + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// parseRates parses the -rates list into ascending positive rates.
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("rate %q is not a positive number", part)
		}
		if len(out) > 0 && v <= out[len(out)-1] {
			return nil, fmt.Errorf("rates must be ascending (%v after %v)", v, out[len(out)-1])
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return out, nil
}

// traceRate is a trace's mean arrival rate, for the report's rate column.
func traceRate(records []loadgen.TraceRecord) float64 {
	if len(records) == 0 {
		return 0
	}
	span := records[len(records)-1].At.Seconds()
	if span <= 0 {
		return float64(len(records))
	}
	return float64(len(records)) / span
}

// printSummary renders one sweep point for the console.
func printSummary(w io.Writer, s loadgen.Summary) {
	fmt.Fprintf(w, "%-8s %8.1f req/s  ok %5d  429 %4d  err %3d  p50 %7.1fms  p95 %7.1fms  p99 %7.1fms  goodput %9.0f rows/s\n",
		s.Process, s.OfferedRate, s.OK, s.Rejected, s.Errors, s.P50MS, s.P95MS, s.P99MS, s.GoodputRowsPerSec)
}

// jsonDecode decodes strictly enough for the stats endpoint.
func jsonDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}
