// The apply experiment: the fused byte-automaton apply engine measured
// against the retained backtracking reference engine on the same loaded
// program — streamed rows/sec and allocations per row at 10k/100k/1M rows
// per worker count, median of 5 runs, persisted as BENCH_apply.json. The
// two arms are one program loaded twice, with DisableAutomaton switching
// the second onto the reference engine, so the gap is exactly the
// automaton: one tagged scan + arena rendering versus per-case
// backtracking dispatch. The headline comparison is the automaton arm
// against the committed BENCH_stream.json baseline (the pre-automaton
// streaming engine), where the 1M-row point must hold >= 3x.
//
//	clxbench -exp apply [-apply-out f] [-apply-max-rows n]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	clx "clx"
	"clx/internal/dataset"
	"clx/internal/pattern"
	"clx/internal/provenance"
	"clx/internal/stream"
)

var (
	applyOutFlag = flag.String("apply-out", "BENCH_apply.json",
		"apply experiment: output JSON path ('' disables the file)")
	applyMaxRows = flag.Int("apply-max-rows", 1_000_000,
		"apply experiment: skip size points above this row count")
)

// applyReport is the persisted BENCH_apply.json document.
type applyReport struct {
	GeneratedUnix int64                 `json:"generated_unix"`
	Provenance    provenance.Provenance `json:"provenance"`
	GOMAXPROCS    int                   `json:"gomaxprocs"`
	ChunkSize     int                   `json:"chunk_size"`
	Target        string                `json:"target"`
	// Reps is the run count per point; times and allocs are medians.
	Reps  int              `json:"reps"`
	Sizes []applySizePoint `json:"sizes"`
}

// applySizePoint holds one column size: the streaming engine over the
// automaton and over the backtracking reference, per worker count.
type applySizePoint struct {
	Rows      int                `json:"rows"`
	Automaton []applyMeasurement `json:"automaton"`
	Reference []applyMeasurement `json:"reference"`
}

type applyMeasurement struct {
	Workers      int     `json:"workers"`
	MS           float64 `json:"ms"`
	RowsPerSec   float64 `json:"rows_per_sec"`
	AllocsPerRow float64 `json:"allocs_per_row"`
	Window       int     `json:"window"`
	PeakInFlight int     `json:"peak_in_flight"`
}

// measureMedian times fn over reps runs and returns the median duration
// and median allocation count — the issue's median-of-5 protocol, less
// noise-prone than best-of on a machine running other work.
func measureMedian(reps int, fn func()) (time.Duration, uint64) {
	durs := make([]time.Duration, 0, reps)
	allocs := make([]uint64, 0, reps)
	var m0, m1 runtime.MemStats
	for r := 0; r < reps; r++ {
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		fn()
		d := time.Since(t0)
		runtime.ReadMemStats(&m1)
		durs = append(durs, d)
		allocs = append(allocs, m1.Mallocs-m0.Mallocs)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	sort.Slice(allocs, func(i, j int) bool { return allocs[i] < allocs[j] })
	return durs[len(durs)/2], allocs[len(allocs)/2]
}

func applyExperiment() {
	target := pattern.MustParse("<D>3'-'<D>3'-'<D>4")
	seedRows, _ := dataset.Phones(2000, 6, 77)
	sess := clx.NewSession(seedRows)
	tr, err := sess.Label(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clxbench:", err)
		return
	}
	raw, err := tr.Export()
	if err != nil {
		fmt.Fprintln(os.Stderr, "clxbench:", err)
		return
	}
	auto, err := clx.LoadProgram(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clxbench:", err)
		return
	}
	if !auto.HasAutomaton() {
		fmt.Fprintln(os.Stderr, "clxbench: phones program did not lower to an automaton")
		return
	}
	ref, err := clx.LoadProgram(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clxbench:", err)
		return
	}
	ref.DisableAutomaton()

	const reps = 5
	report := applyReport{
		GeneratedUnix: time.Now().Unix(),
		Provenance:    provenance.Collect(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		ChunkSize:     stream.DefaultChunkSize,
		Target:        target.String(),
		Reps:          reps,
	}
	fmt.Printf("== Automaton vs reference apply engine (streamed, chunk=%d, median of %d) ==\n",
		stream.DefaultChunkSize, reps)
	fmt.Printf("%9s %8s %12s %12s %10s %12s %12s %7s\n",
		"rows", "workers", "automaton", "reference", "speedup", "auto all/r", "ref all/r", "window")

	run := func(sp *clx.SavedProgram, rows []string, w int) (applyMeasurement, time.Duration) {
		var st stream.Stats
		d, allocs := measureMedian(reps, func() {
			var err error
			st, err = stream.Run(sp, stream.NewSliceReader(rows), stream.LineEncoder{},
				io.Discard, stream.Options{Workers: w})
			if err != nil {
				fmt.Fprintln(os.Stderr, "clxbench:", err)
			}
		})
		return applyMeasurement{
			Workers:      w,
			MS:           ms(d),
			RowsPerSec:   float64(len(rows)) / d.Seconds(),
			AllocsPerRow: float64(allocs) / float64(len(rows)),
			Window:       st.Window,
			PeakInFlight: st.PeakInFlight,
		}, d
	}

	for _, n := range []int{10_000, 100_000, 1_000_000} {
		if n > *applyMaxRows {
			continue
		}
		rows, _ := dataset.Phones(n, 6, 77)
		point := applySizePoint{Rows: n}
		for _, w := range []int{1, 4, 8} {
			am, da := run(auto, rows, w)
			rm, dr := run(ref, rows, w)
			point.Automaton = append(point.Automaton, am)
			point.Reference = append(point.Reference, rm)
			fmt.Printf("%9d %8d %9.0f/s %9.0f/s %9.2fx %12.2f %12.2f %7d\n",
				n, w, am.RowsPerSec, rm.RowsPerSec, dr.Seconds()/da.Seconds(),
				am.AllocsPerRow, rm.AllocsPerRow, am.Window)
		}
		report.Sizes = append(report.Sizes, point)
	}

	if *applyOutFlag == "" {
		return
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep "<D>3" readable
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "clxbench: encode apply report:", err)
		return
	}
	if err := os.WriteFile(*applyOutFlag, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "clxbench: write apply report:", err)
		return
	}
	fmt.Printf("wrote %s\n", *applyOutFlag)
}
