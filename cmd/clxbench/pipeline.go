// The pipeline experiment: serial-vs-parallel timings for the
// profile → synthesize → transform hot path, persisted as
// BENCH_pipeline.json so the perf trajectory is tracked across PRs.
//
//	clxbench -exp pipeline [-rows n] [-pipeline-out f]
//
// Each worker count in the sweep runs the full pipeline over the same
// generated phone column (the §7.2 scaling scenario); after one untimed
// warm-up run, per-stage times are the median over the timed repetitions
// (median-of-5 by default) to damp scheduler noise, and the speedup column
// is relative to Workers=1, which executes the exact serial code path.
// Every run records the GOMAXPROCS it actually executed under, so a sweep
// from a CPU-capped container reads as what it is.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"clx/internal/cluster"
	"clx/internal/dataset"
	"clx/internal/pattern"
	"clx/internal/provenance"
	"clx/internal/synth"
)

var (
	pipelineRows = flag.Int("rows", 20000, "pipeline experiment: input column size")
	pipelineOut  = flag.String("pipeline-out", "BENCH_pipeline.json",
		"pipeline experiment: output JSON path ('' disables the file)")
	pipelineReps = flag.Int("reps", 5, "pipeline experiment: timed repetitions per worker count (median is kept)")
)

// pipelineRun is one row of the report: per-stage and total wall time for
// one worker count.
type pipelineRun struct {
	Workers int `json:"workers"`
	// GOMAXPROCS is recorded per run: a sweep is only meaningful relative
	// to the parallelism the runtime actually had.
	GOMAXPROCS  int     `json:"gomaxprocs"`
	ProfileMS   float64 `json:"profile_ms"`
	SynthMS     float64 `json:"synthesize_ms"`
	TransformMS float64 `json:"transform_ms"`
	TotalMS     float64 `json:"total_ms"`
	// SpeedupVsSerial is serial total / this total (≥1 means faster).
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// pipelineReport is the persisted BENCH_pipeline.json document.
type pipelineReport struct {
	GeneratedUnix int64                 `json:"generated_unix"`
	Provenance    provenance.Provenance `json:"provenance"`
	Rows          int                   `json:"rows"`
	GOMAXPROCS    int                   `json:"gomaxprocs"`
	Target        string                `json:"target"`
	Runs          []pipelineRun         `json:"runs"`
}

// pipelineSweep is the worker counts measured: the serial baseline, the
// powers of two the determinism tests pin, and the machine width.
func pipelineSweep() []int {
	sweep := []int{1, 2, 4, 8}
	if n := runtime.GOMAXPROCS(0); n > 8 {
		sweep = append(sweep, n)
	}
	return sweep
}

func pipeline() {
	rows, _ := dataset.Phones(*pipelineRows, 6, 77)
	target := pattern.MustParse("<D>3'-'<D>3'-'<D>4")
	fmt.Printf("== Pipeline: serial vs parallel (rows=%d, GOMAXPROCS=%d, median of %d) ==\n",
		len(rows), runtime.GOMAXPROCS(0), *pipelineReps)
	fmt.Printf("%8s %12s %12s %12s %12s %9s\n",
		"workers", "profile", "synthesize", "transform", "total", "speedup")

	report := pipelineReport{
		GeneratedUnix: time.Now().Unix(),
		Provenance:    provenance.Collect(),
		Rows:          len(rows),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Target:        target.String(),
	}
	for _, w := range pipelineSweep() {
		run := timePipeline(rows, target, w, *pipelineReps)
		if len(report.Runs) == 0 {
			run.SpeedupVsSerial = 1
		} else {
			run.SpeedupVsSerial = report.Runs[0].TotalMS / run.TotalMS
		}
		report.Runs = append(report.Runs, run)
		fmt.Printf("%8d %10.2fms %10.2fms %10.2fms %10.2fms %8.2fx\n",
			run.Workers, run.ProfileMS, run.SynthMS, run.TransformMS, run.TotalMS, run.SpeedupVsSerial)
	}
	if *pipelineOut == "" {
		return
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep "<D>3" readable
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "clxbench: encode pipeline report:", err)
		return
	}
	if err := os.WriteFile(*pipelineOut, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "clxbench: write pipeline report:", err)
		return
	}
	fmt.Printf("wrote %s\n", *pipelineOut)
}

// timePipeline measures each stage at the given worker count: one untimed
// warm-up run, then the per-stage median over reps timed runs.
func timePipeline(rows []string, target pattern.Pattern, workers, reps int) pipelineRun {
	co := cluster.DefaultOptions()
	co.Workers = workers
	so := synth.DefaultOptions()
	so.Workers = workers
	run := pipelineRun{Workers: workers, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	stage := func() (h *cluster.Hierarchy, profile, synthesize, transform float64) {
		t0 := time.Now()
		h = cluster.Profile(rows, co)
		t1 := time.Now()
		res := synth.Synthesize(h, target, so)
		t2 := time.Now()
		res.Transform()
		t3 := time.Now()
		return h, ms(t1.Sub(t0)), ms(t2.Sub(t1)), ms(t3.Sub(t2))
	}
	stage() // warm-up: caches, page-in, scheduler settle
	var profile, synthesize, transform, total []float64
	for r := 0; r < reps; r++ {
		_, p, s, tr := stage()
		profile = append(profile, p)
		synthesize = append(synthesize, s)
		transform = append(transform, tr)
		total = append(total, p+s+tr)
	}
	run.ProfileMS = median(profile)
	run.SynthMS = median(synthesize)
	run.TransformMS = median(transform)
	run.TotalMS = median(total)
	return run
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
