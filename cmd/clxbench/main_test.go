package main

import (
	"testing"
)

// Every experiment in the printing order is wired, and unknown ids error.
func TestExperimentWiring(t *testing.T) {
	exps := experimentsMap()
	for _, id := range allOrder() {
		if exps[id] == nil {
			t.Errorf("experiment %q in allOrder but not wired", id)
		}
	}
	if err := runExperiment("nope"); err == nil {
		t.Error("unknown experiment should error")
	}
}

// The cheap single experiments print without panicking. (The expensive
// suite/study runs are covered by internal/experiments tests.)
func TestCheapExperimentsRun(t *testing.T) {
	for _, id := range []string{"table5", "table6", "scaling"} {
		if err := runExperiment(id); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}
