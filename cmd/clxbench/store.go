// The store experiment: the registry's reason to exist, measured. One
// synthesize-and-register (the expensive verified path) against many
// apply-by-id calls, cold and warm compiled-matcher cache, persisted as
// BENCH_store.json.
//
//	clxbench -exp store [-rows n] [-reps n] [-store-out f]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	clx "clx"
	"clx/internal/dataset"
	"clx/internal/pattern"
	"clx/internal/progstore"
	"clx/internal/provenance"
	"clx/internal/rematch"
)

var storeOut = flag.String("store-out", "BENCH_store.json",
	"store experiment: output JSON path ('' disables the file)")

// storeReport is the persisted BENCH_store.json document.
type storeReport struct {
	GeneratedUnix int64                 `json:"generated_unix"`
	Provenance    provenance.Provenance `json:"provenance"`
	Rows          int                   `json:"rows"`
	GOMAXPROCS    int                   `json:"gomaxprocs"`
	Target        string                `json:"target"`
	RegisterMS    float64               `json:"synthesize_and_register_ms"`
	ReopenMS      float64               `json:"reopen_recover_ms"`
	ApplyColdMS   float64               `json:"apply_by_id_cold_cache_ms"`
	ApplyWarmMS   float64               `json:"apply_by_id_warm_cache_ms"`
	// RegisterOverWarm is how many warm applies one synthesis buys.
	RegisterOverWarm float64 `json:"register_over_warm_apply"`
}

func storeExperiment() {
	rows, _ := dataset.Phones(*pipelineRows, 6, 77)
	target := pattern.MustParse("<D>3'-'<D>3'-'<D>4")
	dir, err := os.MkdirTemp("", "clxbench-store-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "clxbench:", err)
		return
	}
	defer os.RemoveAll(dir)

	fmt.Printf("== Program store: synthesize-and-register vs apply-by-id (rows=%d, best of %d) ==\n",
		len(rows), *pipelineReps)
	report := storeReport{
		GeneratedUnix: time.Now().Unix(),
		Provenance:    provenance.Collect(),
		Rows:          len(rows),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Target:        target.String(),
	}
	best := func(cur, v float64) float64 {
		if cur == 0 || v < cur {
			return v
		}
		return cur
	}

	// Synthesize-and-register: profile, Algorithm 2, export, durable write.
	var id string
	for r := 0; r < *pipelineReps; r++ {
		st, err := progstore.Open(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clxbench:", err)
			return
		}
		rematch.ResetCache()
		t0 := time.Now()
		sess := clx.NewSession(rows)
		tr, err := sess.Label(target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clxbench:", err)
			return
		}
		raw, err := tr.Export()
		if err != nil {
			fmt.Fprintln(os.Stderr, "clxbench:", err)
			return
		}
		entry, err := st.Register(raw, progstore.Meta{Name: "bench", RowCount: len(rows)})
		if err != nil {
			fmt.Fprintln(os.Stderr, "clxbench:", err)
			return
		}
		tr.Run() // both legs end with the transformed column in hand
		report.RegisterMS = best(report.RegisterMS, ms(time.Since(t0)))
		id = entry.ID
		st.Close()
	}

	// Reopen: recovery cost of snapshot + WAL replay.
	var st *progstore.Store
	for r := 0; r < *pipelineReps; r++ {
		if st != nil {
			st.Close()
		}
		t0 := time.Now()
		st, err = progstore.Open(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clxbench:", err)
			return
		}
		report.ReopenMS = best(report.ReopenMS, ms(time.Since(t0)))
	}
	st.Close()

	// Cold apply: the first request a freshly restarted daemon serves —
	// recovery, program decode, and every matcher compiled from scratch.
	for r := 0; r < *pipelineReps; r++ {
		rematch.ResetCache()
		t0 := time.Now()
		st, err = progstore.Open(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clxbench:", err)
			return
		}
		if _, err := st.Apply(id, rows, 0); err != nil {
			fmt.Fprintln(os.Stderr, "clxbench:", err)
			return
		}
		report.ApplyColdMS = best(report.ApplyColdMS, ms(time.Since(t0)))
		if r < *pipelineReps-1 {
			st.Close()
		}
	}
	defer st.Close()

	// Warm apply: the steady state, program and matchers resident.
	for r := 0; r < *pipelineReps; r++ {
		t0 := time.Now()
		if _, err := st.Apply(id, rows, 0); err != nil {
			fmt.Fprintln(os.Stderr, "clxbench:", err)
			return
		}
		report.ApplyWarmMS = best(report.ApplyWarmMS, ms(time.Since(t0)))
	}
	report.RegisterOverWarm = report.RegisterMS / report.ApplyWarmMS

	fmt.Printf("%-28s %10.2fms\n", "synthesize-and-register", report.RegisterMS)
	fmt.Printf("%-28s %10.2fms\n", "reopen (snapshot+WAL)", report.ReopenMS)
	fmt.Printf("%-28s %10.2fms\n", "apply by id, cold cache", report.ApplyColdMS)
	fmt.Printf("%-28s %10.2fms\n", "apply by id, warm cache", report.ApplyWarmMS)
	fmt.Printf("%-28s %9.1fx\n", "register / warm apply", report.RegisterOverWarm)

	if *storeOut == "" {
		return
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep "<D>3" readable
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "clxbench: encode store report:", err)
		return
	}
	if err := os.WriteFile(*storeOut, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "clxbench: write store report:", err)
		return
	}
	fmt.Printf("wrote %s\n", *storeOut)
}
