package main

import (
	"testing"
	"time"
)

// measureMedian returns the median, not the best: with an odd spread of
// run times the middle element comes back, and allocation medians are
// taken independently of the duration order.
func TestMeasureMedian(t *testing.T) {
	delays := []time.Duration{
		5 * time.Millisecond,
		1 * time.Millisecond,
		3 * time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
	}
	i := 0
	d, _ := measureMedian(len(delays), func() {
		time.Sleep(delays[i])
		i++
	})
	if d < 2*time.Millisecond || d >= 5*time.Millisecond {
		t.Errorf("median duration %v outside the expected middle band", d)
	}
}

// The apply experiment runs end to end at a small size and produces both
// arms per worker count. The file write is disabled; this only checks the
// measurement loop and the automaton/reference arm wiring.
func TestApplyExperimentSmall(t *testing.T) {
	*applyOutFlag = ""
	*applyMaxRows = 10_000
	applyExperiment()
}
