// The profile experiment: counted-profiling throughput on the pipeline
// dataset, persisted as BENCH_profile.json so the profile hot path's
// trajectory is tracked across PRs.
//
//	clxbench -exp profile [-rows n] [-reps n] [-profile-out f]
//
// For each worker count the experiment reports the median-of-reps wall
// time, rows/sec, allocations per row (from runtime.MemStats deltas), the
// distinct-value and distinct-pattern ratios that counted profiling
// exploits, and the per-phase breakdown (value index, tokenize+intern,
// grouping, constant discovery, refinement) from cluster.ProfileWithStats.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"clx/internal/cluster"
	"clx/internal/dataset"
	"clx/internal/provenance"
)

var profileOut = flag.String("profile-out", "BENCH_profile.json",
	"profile experiment: output JSON path ('' disables the file)")

// profilePhases is the per-phase breakdown of one run, milliseconds.
type profilePhases struct {
	IndexMS     float64 `json:"index_ms"`
	TokenizeMS  float64 `json:"tokenize_ms"`
	GroupMS     float64 `json:"group_ms"`
	ConstantsMS float64 `json:"constants_ms"`
	RefineMS    float64 `json:"refine_ms"`
}

// profileRun is one row of the report: one worker count's medians.
type profileRun struct {
	Workers         int           `json:"workers"`
	GOMAXPROCS      int           `json:"gomaxprocs"`
	ProfileMS       float64       `json:"profile_ms"`
	RowsPerSec      float64       `json:"rows_per_sec"`
	AllocsPerRow    float64       `json:"allocs_per_row"`
	Phases          profilePhases `json:"phases"`
	SpeedupVsSerial float64       `json:"speedup_vs_serial"`
}

// profileReport is the persisted BENCH_profile.json document.
type profileReport struct {
	GeneratedUnix  int64                 `json:"generated_unix"`
	Provenance     provenance.Provenance `json:"provenance"`
	Rows           int                   `json:"rows"`
	DistinctValues int                   `json:"distinct_values"`
	LeafPatterns   int                   `json:"leaf_patterns"`
	// DistinctPatternRatio is leaf patterns / rows — the redundancy counted
	// profiling collapses (1.0 would mean every row has its own pattern).
	DistinctPatternRatio float64      `json:"distinct_pattern_ratio"`
	Reps                 int          `json:"reps"`
	Runs                 []profileRun `json:"runs"`
}

func profileExperiment() {
	rows, _ := dataset.Phones(*pipelineRows, 6, 77)
	reps := *pipelineReps
	fmt.Printf("== Profile: counted clustering (rows=%d, GOMAXPROCS=%d, median of %d) ==\n",
		len(rows), runtime.GOMAXPROCS(0), reps)
	fmt.Printf("%8s %12s %12s %10s %9s  %s\n",
		"workers", "profile", "rows/sec", "allocs/row", "speedup", "phases (idx/tok/grp/const/refine ms)")

	report := profileReport{
		GeneratedUnix: time.Now().Unix(),
		Provenance:    provenance.Collect(),
		Rows:          len(rows),
		Reps:          reps,
	}
	for _, w := range pipelineSweep() {
		run, st := timeProfile(rows, w, reps)
		report.DistinctValues = st.DistinctValues
		report.LeafPatterns = st.LeafPatterns
		report.DistinctPatternRatio = float64(st.LeafPatterns) / float64(len(rows))
		if len(report.Runs) == 0 {
			run.SpeedupVsSerial = 1
		} else {
			run.SpeedupVsSerial = report.Runs[0].ProfileMS / run.ProfileMS
		}
		report.Runs = append(report.Runs, run)
		fmt.Printf("%8d %10.2fms %12.0f %10.2f %8.2fx  %.2f/%.2f/%.2f/%.2f/%.2f\n",
			run.Workers, run.ProfileMS, run.RowsPerSec, run.AllocsPerRow, run.SpeedupVsSerial,
			run.Phases.IndexMS, run.Phases.TokenizeMS, run.Phases.GroupMS,
			run.Phases.ConstantsMS, run.Phases.RefineMS)
	}
	fmt.Printf("distinct values %d, leaf patterns %d (pattern ratio %.5f)\n",
		report.DistinctValues, report.LeafPatterns, report.DistinctPatternRatio)
	if *profileOut == "" {
		return
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "clxbench: encode profile report:", err)
		return
	}
	if err := os.WriteFile(*profileOut, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "clxbench: write profile report:", err)
		return
	}
	fmt.Printf("wrote %s\n", *profileOut)
}

// timeProfile runs Profile reps times (after one warm-up) at the given
// worker count and reports per-stat medians plus an allocation count
// measured on a dedicated run.
func timeProfile(rows []string, workers, reps int) (profileRun, *cluster.Stats) {
	co := cluster.DefaultOptions()
	co.Workers = workers
	run := profileRun{Workers: workers, GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// Warm-up: page in the data and let the runtime settle.
	_, last := cluster.ProfileWithStats(rows, co)

	totals := make([]float64, 0, reps)
	var idx, tok, grp, cst, ref []float64
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		_, st := cluster.ProfileWithStats(rows, co)
		totals = append(totals, ms(time.Since(t0)))
		idx = append(idx, ms(st.Index))
		tok = append(tok, ms(st.Tokenize))
		grp = append(grp, ms(st.Group))
		cst = append(cst, ms(st.Constants))
		ref = append(ref, ms(st.Refine))
		last = st
	}
	run.ProfileMS = median(totals)
	run.RowsPerSec = float64(len(rows)) / (run.ProfileMS / 1e3)
	run.Phases = profilePhases{
		IndexMS:     median(idx),
		TokenizeMS:  median(tok),
		GroupMS:     median(grp),
		ConstantsMS: median(cst),
		RefineMS:    median(ref),
	}

	// Allocations per row, via the global Mallocs counter (covers worker
	// goroutines too).
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	cluster.Profile(rows, co)
	runtime.ReadMemStats(&m1)
	run.AllocsPerRow = float64(m1.Mallocs-m0.Mallocs) / float64(len(rows))
	return run, last
}

// median returns the median of vs (mean of the middle pair for even
// lengths). vs is sorted in place.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	mid := len(vs) / 2
	if len(vs)%2 == 1 {
		return vs[mid]
	}
	return (vs[mid-1] + vs[mid]) / 2
}
