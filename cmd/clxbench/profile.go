// The profile experiment: counted-profiling throughput on the pipeline
// dataset, persisted as BENCH_profile.json so the profile hot path's
// trajectory is tracked across PRs.
//
//	clxbench -exp profile [-rows n] [-reps n] [-profile-out f] [-profile-baseline f]
//
// Each worker count is measured with runtime.GOMAXPROCS pinned to the
// requested count, so the sweep exercises the scheduler parallelism the
// worker count asks for instead of inheriting whatever the process
// started with (on a one-CPU container the pin grants scheduling slots,
// not extra cores — the recorded gomaxprocs documents exactly what ran).
// For each count the experiment reports the median-of-reps wall time,
// rows/sec, allocations per row (from runtime.MemStats deltas), which
// execution plan profiling selected (sharded index vs serial scan), and
// the per-phase breakdown from cluster.ProfileWithStats. A final section
// measures the incremental-append path: re-profiling after a 5% append
// through cluster.Index versus profiling the grown column from scratch.
//
// With -profile-baseline, the fresh medians are compared against a
// previously persisted report and the process exits non-zero when
// rows/sec regresses more than profileTolerance below the baseline for
// any worker count (see `make bench-check`).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"clx/internal/cluster"
	"clx/internal/dataset"
	"clx/internal/provenance"
)

var (
	profileOut = flag.String("profile-out", "BENCH_profile.json",
		"profile experiment: output JSON path ('' disables the file)")
	profileBaseline = flag.String("profile-baseline", "",
		"profile experiment: baseline BENCH_profile.json to compare against (exit 1 on >15% rows/sec regression)")
)

// profileTolerance is the allowed fractional rows/sec drop versus the
// baseline before the comparison fails: medians on shared CI hardware
// jitter by a few percent, so the band is wide enough to absorb noise but
// narrow enough to catch a real regression.
const profileTolerance = 0.15

// profilePhases is the per-phase breakdown of one run, milliseconds.
type profilePhases struct {
	IndexMS     float64 `json:"index_ms"`
	TokenizeMS  float64 `json:"tokenize_ms"`
	GroupMS     float64 `json:"group_ms"`
	ConstantsMS float64 `json:"constants_ms"`
	RefineMS    float64 `json:"refine_ms"`
}

// profileRun is one row of the report: one worker count's medians.
// Workers is the requested fan-out; GOMAXPROCS is the scheduler width the
// run was pinned to while measured.
type profileRun struct {
	Workers         int           `json:"workers"`
	GOMAXPROCS      int           `json:"gomaxprocs"`
	Sharded         bool          `json:"sharded"`
	ProfileMS       float64       `json:"profile_ms"`
	RowsPerSec      float64       `json:"rows_per_sec"`
	AllocsPerRow    float64       `json:"allocs_per_row"`
	Phases          profilePhases `json:"phases"`
	SpeedupVsSerial float64       `json:"speedup_vs_serial"`
}

// incrementalRun is the incremental-append measurement: the median cost
// of re-profiling after appending AppendRows to a BaseRows-row index,
// versus profiling the grown column from scratch. Serial workers, so the
// speedup isolates the incremental data structure, not parallelism.
type incrementalRun struct {
	BaseRows      int     `json:"base_rows"`
	AppendRows    int     `json:"append_rows"`
	FullMS        float64 `json:"full_ms"`
	IncrementalMS float64 `json:"incremental_ms"`
	SpeedupVsFull float64 `json:"speedup_vs_full"`
}

// profileReport is the persisted BENCH_profile.json document.
type profileReport struct {
	GeneratedUnix  int64                 `json:"generated_unix"`
	Provenance     provenance.Provenance `json:"provenance"`
	Rows           int                   `json:"rows"`
	DistinctValues int                   `json:"distinct_values"`
	LeafPatterns   int                   `json:"leaf_patterns"`
	// DistinctPatternRatio is leaf patterns / rows — the redundancy counted
	// profiling collapses (1.0 would mean every row has its own pattern).
	DistinctPatternRatio float64         `json:"distinct_pattern_ratio"`
	Reps                 int             `json:"reps"`
	Runs                 []profileRun    `json:"runs"`
	Incremental          *incrementalRun `json:"incremental,omitempty"`
}

func profileExperiment() {
	rows, _ := dataset.Phones(*pipelineRows, 6, 77)
	reps := *pipelineReps
	fmt.Printf("== Profile: counted clustering (rows=%d, NumCPU=%d, median of %d) ==\n",
		len(rows), runtime.NumCPU(), reps)
	fmt.Printf("%8s %11s %8s %12s %12s %10s %9s  %s\n",
		"workers", "gomaxprocs", "plan", "profile", "rows/sec", "allocs/row", "speedup",
		"phases (idx/tok/grp/const/refine ms)")

	report := profileReport{
		GeneratedUnix: time.Now().Unix(),
		Provenance:    provenance.Collect(),
		Rows:          len(rows),
		Reps:          reps,
	}
	prev := runtime.GOMAXPROCS(0)
	for _, w := range pipelineSweep() {
		// Pin the scheduler to the worker count under test so the run
		// measures the parallelism it requested.
		runtime.GOMAXPROCS(w)
		run, st := timeProfile(rows, w, reps)
		report.DistinctValues = st.DistinctValues
		report.LeafPatterns = st.LeafPatterns
		report.DistinctPatternRatio = float64(st.LeafPatterns) / float64(len(rows))
		if len(report.Runs) == 0 {
			run.SpeedupVsSerial = 1
		} else {
			run.SpeedupVsSerial = report.Runs[0].ProfileMS / run.ProfileMS
		}
		report.Runs = append(report.Runs, run)
		plan := "serial"
		if run.Sharded {
			plan = "sharded"
		}
		fmt.Printf("%8d %11d %8s %10.2fms %12.0f %10.2f %8.2fx  %.2f/%.2f/%.2f/%.2f/%.2f\n",
			run.Workers, run.GOMAXPROCS, plan, run.ProfileMS, run.RowsPerSec,
			run.AllocsPerRow, run.SpeedupVsSerial,
			run.Phases.IndexMS, run.Phases.TokenizeMS, run.Phases.GroupMS,
			run.Phases.ConstantsMS, run.Phases.RefineMS)
	}
	runtime.GOMAXPROCS(prev)
	fmt.Printf("distinct values %d, leaf patterns %d (pattern ratio %.5f)\n",
		report.DistinctValues, report.LeafPatterns, report.DistinctPatternRatio)

	inc := timeIncremental(rows, reps)
	report.Incremental = &inc
	fmt.Printf("incremental re-profile: %d rows + %d appended: full %.2fms, incremental %.2fms (%.1fx)\n",
		inc.BaseRows, inc.AppendRows, inc.FullMS, inc.IncrementalMS, inc.SpeedupVsFull)

	if *profileBaseline != "" {
		if err := compareBaseline(report, *profileBaseline); err != nil {
			fmt.Fprintln(os.Stderr, "clxbench: profile baseline:", err)
			os.Exit(1)
		}
	}
	if *profileOut == "" {
		return
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "clxbench: encode profile report:", err)
		return
	}
	if err := os.WriteFile(*profileOut, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "clxbench: write profile report:", err)
		return
	}
	fmt.Printf("wrote %s\n", *profileOut)
}

// timeProfile runs Profile reps times (after one warm-up) at the given
// worker count and reports per-stat medians plus an allocation count
// measured on a dedicated run.
func timeProfile(rows []string, workers, reps int) (profileRun, *cluster.Stats) {
	co := cluster.DefaultOptions()
	co.Workers = workers
	run := profileRun{Workers: workers, GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// Warm-up: page in the data and let the runtime settle.
	_, last := cluster.ProfileWithStats(rows, co)
	run.Sharded = last.Sharded

	totals := make([]float64, 0, reps)
	var idx, tok, grp, cst, ref []float64
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		_, st := cluster.ProfileWithStats(rows, co)
		totals = append(totals, ms(time.Since(t0)))
		idx = append(idx, ms(st.Index))
		tok = append(tok, ms(st.Tokenize))
		grp = append(grp, ms(st.Group))
		cst = append(cst, ms(st.Constants))
		ref = append(ref, ms(st.Refine))
		last = st
	}
	run.ProfileMS = median(totals)
	run.RowsPerSec = float64(len(rows)) / (run.ProfileMS / 1e3)
	run.Phases = profilePhases{
		IndexMS:     median(idx),
		TokenizeMS:  median(tok),
		GroupMS:     median(grp),
		ConstantsMS: median(cst),
		RefineMS:    median(ref),
	}

	// Allocations per row, via the global Mallocs counter (covers worker
	// goroutines too).
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	cluster.Profile(rows, co)
	runtime.ReadMemStats(&m1)
	run.AllocsPerRow = float64(m1.Mallocs-m0.Mallocs) / float64(len(rows))
	return run, last
}

// timeIncremental measures a 5% append: the median cost of folding the
// appended rows into an already-profiled cluster.Index and re-profiling,
// versus profiling the full grown column from scratch. Both sides run
// serially so the comparison isolates the incremental index.
func timeIncremental(rows []string, reps int) incrementalRun {
	cut := len(rows) * 95 / 100
	co := cluster.DefaultOptions()
	co.Workers = 1
	out := incrementalRun{BaseRows: cut, AppendRows: len(rows) - cut}

	full := make([]float64, 0, reps)
	incr := make([]float64, 0, reps)
	cluster.Profile(rows, co) // warm-up
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		cluster.Profile(rows, co)
		full = append(full, ms(time.Since(t0)))

		ix := cluster.NewIndex(co)
		ix.Add(rows[:cut])
		ix.Profile()
		t0 = time.Now()
		ix.Add(rows[cut:])
		ix.Profile()
		incr = append(incr, ms(time.Since(t0)))
	}
	out.FullMS = median(full)
	out.IncrementalMS = median(incr)
	if out.IncrementalMS > 0 {
		out.SpeedupVsFull = out.FullMS / out.IncrementalMS
	}
	return out
}

// compareBaseline checks the fresh report's rows/sec medians against a
// persisted baseline, per worker count, and returns an error naming every
// count that regressed more than profileTolerance. Worker counts present
// on only one side are reported but don't fail the check, so the sweep
// can evolve without invalidating old baselines.
func compareBaseline(fresh profileReport, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base profileReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	baseBy := make(map[int]profileRun, len(base.Runs))
	for _, r := range base.Runs {
		baseBy[r.Workers] = r
	}
	fmt.Printf("baseline check vs %s (tolerance %.0f%%):\n", path, profileTolerance*100)
	var regressed []string
	for _, r := range fresh.Runs {
		b, ok := baseBy[r.Workers]
		if !ok {
			fmt.Printf("  workers=%d: no baseline entry, skipped\n", r.Workers)
			continue
		}
		floor := b.RowsPerSec * (1 - profileTolerance)
		delta := 100 * (r.RowsPerSec - b.RowsPerSec) / b.RowsPerSec
		status := "ok"
		if r.RowsPerSec < floor {
			status = "REGRESSED"
			regressed = append(regressed,
				fmt.Sprintf("workers=%d: %.0f rows/sec vs baseline %.0f (%.1f%%)",
					r.Workers, r.RowsPerSec, b.RowsPerSec, delta))
		}
		fmt.Printf("  workers=%d: %.0f rows/sec vs baseline %.0f (%+.1f%%) %s\n",
			r.Workers, r.RowsPerSec, b.RowsPerSec, delta, status)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("rows/sec regressed beyond %.0f%%: %v",
			profileTolerance*100, regressed)
	}
	return nil
}

// median returns the median of vs (mean of the middle pair for even
// lengths). vs is sorted in place.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	mid := len(vs) / 2
	if len(vs)%2 == 1 {
		return vs[mid]
	}
	return (vs[mid-1] + vs[mid]) / 2
}
