// The obs experiment: what the observability layer costs. The same binary
// runs the public-API pipeline (profile → synthesize → transform) and a
// streaming bulk apply twice per repetition — once with the metric
// registry frozen (obs.SetEnabled(false), the uninstrumented baseline)
// and once live — with the mode order alternating between repetitions and
// a forced GC before every timed run, so scheduler drift and collection
// debt hit both modes equally. Each repetition contributes one *paired*
// relative difference (its two modes run adjacent in time, so machine
// drift cancels within the pair); the overhead percentage is the median
// over those pairs, which stays stable on noisy shared machines where
// comparing per-mode aggregates across the whole session does not. The
// result is persisted as BENCH_obs.json; the experiment fails (non-zero
// exit) when the pipeline overhead exceeds -obs-max-overhead, which is
// the metrics-overhead smoke test `make obs-smoke` runs.
//
//	clxbench -exp obs [-rows n] [-reps n] [-obs-out f] [-obs-max-overhead pct]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	clx "clx"
	"clx/internal/dataset"
	"clx/internal/obs"
	"clx/internal/pattern"
	"clx/internal/provenance"
	"clx/internal/stream"
)

var (
	obsOut = flag.String("obs-out", "BENCH_obs.json",
		"obs experiment: output JSON path ('' disables the file)")
	obsMaxOverhead = flag.Float64("obs-max-overhead", 5.0,
		"obs experiment: fail when the instrumented pipeline is more than this % over baseline")
	// The obs experiment compares two near-identical minima, so it needs
	// more samples than the other experiments' medians for both modes to
	// reach their floor on a noisy machine; each sample is ~25ms.
	obsReps = flag.Int("obs-reps", 21, "obs experiment: timed repetitions per mode (minimum is kept)")
)

// obsModeRun holds one mode's median stage timings.
type obsModeRun struct {
	PipelineMS float64 `json:"pipeline_ms"`
	StreamMS   float64 `json:"stream_ms"`
}

// obsReport is the persisted BENCH_obs.json document.
type obsReport struct {
	GeneratedUnix       int64                 `json:"generated_unix"`
	Provenance          provenance.Provenance `json:"provenance"`
	Rows                int                   `json:"rows"`
	GOMAXPROCS          int                   `json:"gomaxprocs"`
	Reps                int                   `json:"reps"`
	Baseline            obsModeRun            `json:"baseline"`
	Instrumented        obsModeRun            `json:"instrumented"`
	PipelineOverheadPct float64               `json:"pipeline_overhead_pct"`
	StreamOverheadPct   float64               `json:"stream_overhead_pct"`
	MaxOverheadPct      float64               `json:"max_overhead_pct"`
	Pass                bool                  `json:"pass"`
}

func obsExperiment() {
	rows, _ := dataset.Phones(*pipelineRows, 6, 77)
	target := pattern.MustParse("<D>3'-'<D>3'-'<D>4")
	reps := *obsReps
	fmt.Printf("== Obs: metrics/tracing overhead (rows=%d, GOMAXPROCS=%d, median of %d paired reps) ==\n",
		len(rows), runtime.GOMAXPROCS(0), reps)

	// Build the saved program once; the streaming leg measures the serving
	// hot path, not synthesis.
	sp := buildSavedProgram(rows, target)

	pipelineOnce := func() float64 {
		t0 := time.Now()
		sess := clx.NewSession(rows)
		tr, err := sess.Label(target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clxbench: obs pipeline:", err)
			os.Exit(1)
		}
		tr.Run()
		return ms(time.Since(t0))
	}
	streamOnce := func() float64 {
		t0 := time.Now()
		if _, err := stream.Run(sp, stream.NewSliceReader(rows), stream.NDJSONEncoder{},
			io.Discard, stream.Options{}); err != nil {
			fmt.Fprintln(os.Stderr, "clxbench: obs stream:", err)
			os.Exit(1)
		}
		return ms(time.Since(t0))
	}

	// Warm-up both legs (matcher cache, page-in, scheduler settle).
	pipelineOnce()
	streamOnce()

	// One timed run of both legs in the given mode, behind a forced GC so
	// allocation debt from the previous run never bills to this one.
	timed := func(enabled bool) (pipe, strm float64) {
		prev := obs.SetEnabled(enabled)
		runtime.GC()
		pipe = pipelineOnce()
		runtime.GC()
		strm = streamOnce()
		obs.SetEnabled(prev)
		return pipe, strm
	}
	var basePipe, instPipe, baseStream, instStream []float64
	var pipePairs, streamPairs []float64
	for r := 0; r < reps; r++ {
		// Alternate the order so a drifting machine penalizes both modes
		// symmetrically within every pair.
		var bp, bs, ip, is float64
		if r%2 == 0 {
			bp, bs = timed(false)
			ip, is = timed(true)
		} else {
			ip, is = timed(true)
			bp, bs = timed(false)
		}
		basePipe = append(basePipe, bp)
		baseStream = append(baseStream, bs)
		instPipe = append(instPipe, ip)
		instStream = append(instStream, is)
		pipePairs = append(pipePairs, overheadPct(bp, ip))
		streamPairs = append(streamPairs, overheadPct(bs, is))
	}

	report := obsReport{
		GeneratedUnix:  time.Now().Unix(),
		Provenance:     provenance.Collect(),
		Rows:           len(rows),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Reps:           reps,
		Baseline:       obsModeRun{PipelineMS: median(basePipe), StreamMS: median(baseStream)},
		Instrumented:   obsModeRun{PipelineMS: median(instPipe), StreamMS: median(instStream)},
		MaxOverheadPct: *obsMaxOverhead,
	}
	report.PipelineOverheadPct = median(pipePairs)
	report.StreamOverheadPct = median(streamPairs)
	report.Pass = report.PipelineOverheadPct <= report.MaxOverheadPct

	fmt.Printf("%-12s %12s %12s %10s\n", "leg", "baseline", "instrumented", "overhead")
	fmt.Printf("%-12s %10.2fms %10.2fms %+9.2f%%\n", "pipeline",
		report.Baseline.PipelineMS, report.Instrumented.PipelineMS, report.PipelineOverheadPct)
	fmt.Printf("%-12s %10.2fms %10.2fms %+9.2f%%\n", "stream",
		report.Baseline.StreamMS, report.Instrumented.StreamMS, report.StreamOverheadPct)

	if *obsOut != "" {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetEscapeHTML(false)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "clxbench: encode obs report:", err)
		} else if err := os.WriteFile(*obsOut, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "clxbench: write obs report:", err)
		} else {
			fmt.Printf("wrote %s\n", *obsOut)
		}
	}
	if !report.Pass {
		fmt.Fprintf(os.Stderr, "clxbench: obs overhead %.2f%% exceeds the %.1f%% budget\n",
			report.PipelineOverheadPct, report.MaxOverheadPct)
		os.Exit(1)
	}
	fmt.Printf("pipeline overhead %.2f%% within the %.1f%% budget\n",
		report.PipelineOverheadPct, report.MaxOverheadPct)
}

// buildSavedProgram synthesizes the phone program once through the public
// export/load round trip, the same artifact the daemon serves.
func buildSavedProgram(rows []string, target pattern.Pattern) *clx.SavedProgram {
	sess := clx.NewSession(rows)
	tr, err := sess.Label(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clxbench: obs synthesize:", err)
		os.Exit(1)
	}
	raw, err := tr.Export()
	if err != nil {
		fmt.Fprintln(os.Stderr, "clxbench: obs export:", err)
		os.Exit(1)
	}
	sp, err := clx.LoadProgram(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clxbench: obs load:", err)
		os.Exit(1)
	}
	return sp
}

// overheadPct is the instrumented time over baseline, in percent.
func overheadPct(base, inst float64) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (inst - base) / base
}
