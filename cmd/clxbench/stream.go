// The stream experiment: the bounded-memory bulk-apply engine measured
// against the in-memory Transform path — rows/sec and allocations per row
// at 10k/100k/1M rows for 1/2/4/8 chunk workers, persisted as
// BENCH_stream.json. The interesting numbers are the stream/in-memory
// throughput ratio and the allocs/row gap (the append-style apply path
// allocates far less than materializing both columns).
//
//	clxbench -exp stream [-reps n] [-stream-out f] [-stream-max-rows n]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	clx "clx"
	"clx/internal/dataset"
	"clx/internal/pattern"
	"clx/internal/provenance"
	"clx/internal/stream"
)

var (
	streamOutFlag = flag.String("stream-out", "BENCH_stream.json",
		"stream experiment: output JSON path ('' disables the file)")
	streamMaxRows = flag.Int("stream-max-rows", 1_000_000,
		"stream experiment: skip size points above this row count")
)

// streamReport is the persisted BENCH_stream.json document.
type streamReport struct {
	GeneratedUnix int64                 `json:"generated_unix"`
	Provenance    provenance.Provenance `json:"provenance"`
	GOMAXPROCS    int                   `json:"gomaxprocs"`
	ChunkSize     int                   `json:"chunk_size"`
	Target        string                `json:"target"`
	Sizes         []streamSizePoint     `json:"sizes"`
}

// streamSizePoint holds one column size: the streaming engine and the
// in-memory Transform, per worker count.
type streamSizePoint struct {
	Rows     int                 `json:"rows"`
	Stream   []streamMeasurement `json:"stream"`
	InMemory []streamMeasurement `json:"in_memory"`
}

type streamMeasurement struct {
	Workers      int     `json:"workers"`
	MS           float64 `json:"ms"`
	RowsPerSec   float64 `json:"rows_per_sec"`
	AllocsPerRow float64 `json:"allocs_per_row"`
	PeakInFlight int     `json:"peak_in_flight,omitempty"`
	// Window is the resolved in-flight admission bound of the streaming
	// run (parallel.Window), zero for the in-memory arm.
	Window int `json:"window,omitempty"`
}

// measure times fn over reps runs, keeping the best time and the lowest
// allocation count (warm-up noise only ever adds allocations).
func measure(reps int, fn func()) (best time.Duration, allocs uint64) {
	var m0, m1 runtime.MemStats
	for r := 0; r < reps; r++ {
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		fn()
		d := time.Since(t0)
		runtime.ReadMemStats(&m1)
		if best == 0 || d < best {
			best = d
		}
		if a := m1.Mallocs - m0.Mallocs; r == 0 || a < allocs {
			allocs = a
		}
	}
	return best, allocs
}

func streamExperiment() {
	target := pattern.MustParse("<D>3'-'<D>3'-'<D>4")
	seedRows, _ := dataset.Phones(2000, 6, 77)
	sess := clx.NewSession(seedRows)
	tr, err := sess.Label(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clxbench:", err)
		return
	}
	raw, err := tr.Export()
	if err != nil {
		fmt.Fprintln(os.Stderr, "clxbench:", err)
		return
	}
	sp, err := clx.LoadProgram(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clxbench:", err)
		return
	}

	report := streamReport{
		GeneratedUnix: time.Now().Unix(),
		Provenance:    provenance.Collect(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		ChunkSize:     stream.DefaultChunkSize,
		Target:        target.String(),
	}
	workerCounts := []int{1, 2, 4, 8}
	fmt.Printf("== Streaming bulk apply vs in-memory Transform (chunk=%d, best of %d) ==\n",
		stream.DefaultChunkSize, *pipelineReps)
	fmt.Printf("%9s %8s %12s %12s %10s %14s %14s\n",
		"rows", "workers", "stream", "in-memory", "speedup", "stream alloc/r", "in-mem alloc/r")

	for _, n := range []int{10_000, 100_000, 1_000_000} {
		if n > *streamMaxRows {
			continue
		}
		reps := *pipelineReps
		if n >= 1_000_000 && reps > 3 {
			reps = 3
		}
		rows, _ := dataset.Phones(n, 6, 77)
		point := streamSizePoint{Rows: n}
		for _, w := range workerCounts {
			var st stream.Stats
			d, allocs := measure(reps, func() {
				var err error
				st, err = stream.Run(sp, stream.NewSliceReader(rows), stream.LineEncoder{},
					io.Discard, stream.Options{Workers: w})
				if err != nil {
					fmt.Fprintln(os.Stderr, "clxbench:", err)
				}
			})
			sm := streamMeasurement{
				Workers:      w,
				MS:           ms(d),
				RowsPerSec:   float64(n) / d.Seconds(),
				AllocsPerRow: float64(allocs) / float64(n),
				PeakInFlight: st.PeakInFlight,
				Window:       st.Window,
			}
			point.Stream = append(point.Stream, sm)

			spw := *sp
			spw.Workers = w
			dm, allocsM := measure(reps, func() { spw.Transform(rows) })
			im := streamMeasurement{
				Workers:      w,
				MS:           ms(dm),
				RowsPerSec:   float64(n) / dm.Seconds(),
				AllocsPerRow: float64(allocsM) / float64(n),
			}
			point.InMemory = append(point.InMemory, im)

			fmt.Printf("%9d %8d %9.0f/s %9.0f/s %9.2fx %14.2f %14.2f\n",
				n, w, sm.RowsPerSec, im.RowsPerSec, dm.Seconds()/d.Seconds(),
				sm.AllocsPerRow, im.AllocsPerRow)
		}
		report.Sizes = append(report.Sizes, point)
	}

	if *streamOutFlag == "" {
		return
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep "<D>3" readable
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "clxbench: encode stream report:", err)
		return
	}
	if err := os.WriteFile(*streamOutFlag, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "clxbench: write stream report:", err)
		return
	}
	fmt.Printf("wrote %s\n", *streamOutFlag)
}
