// Command clxbench regenerates the paper's evaluation exhibits (§7,
// Appendices D–E) and prints them in the layout the paper reports. Run a
// single experiment with -exp or everything with -exp all:
//
//	clxbench -exp fig11a        overall completion time, 3 systems × 3 cases
//	clxbench -exp fig11b        rounds of interactions
//	clxbench -exp fig11c        interaction timestamps for 300(6)
//	clxbench -exp fig12         verification time (the headline claim)
//	clxbench -exp fig13         comprehension quiz correct rates
//	clxbench -exp fig14         per-task completion time
//	clxbench -exp table5        explainability test-case statistics
//	clxbench -exp table6        benchmark suite statistics
//	clxbench -exp table7        user-effort wins/ties/losses
//	clxbench -exp fig15         per-task Step speedups
//	clxbench -exp fig16         CLX Step breakdown and CDF
//	clxbench -exp expressivity  perfect-transformation counts
//	clxbench -exp appendixE     user-effort summary fractions
//	clxbench -exp stream        streaming vs in-memory bulk apply (BENCH_stream.json)
//	clxbench -exp obs           observability-layer overhead (BENCH_obs.json)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"os"
	"sort"

	"clx/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -help) or 'all'")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060) while experiments run")
	flag.Parse()
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Print("clxbench: pprof server: ", err)
			}
		}()
	}
	if err := runExperiment(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "clxbench:", err)
		os.Exit(1)
	}
}

// experimentsMap wires experiment ids to their printers.
func experimentsMap() map[string]func() {
	return map[string]func(){
		"fig11a":       fig11a,
		"fig11b":       fig11b,
		"fig11c":       fig11c,
		"fig12":        fig12,
		"fig13":        fig13,
		"fig14":        fig14,
		"table5":       table5,
		"table6":       table6,
		"table7":       table7,
		"fig15":        fig15,
		"fig16":        fig16,
		"expressivity": expressivity,
		"appendixE":    appendixE,
		"scaling":      scaling,
		"pipeline":     pipeline,
		"profile":      profileExperiment,
		"store":        storeExperiment,
		"stream":       streamExperiment,
		"apply":        applyExperiment,
		"obs":          obsExperiment,
		"panel":        panel,
		"markdown":     markdown,
		"quiz":         quiz,
		"tasks":        tasksListing,
	}
}

// allOrder is the printing order of -exp all (panel excluded: it re-runs
// the study nine times).
func allOrder() []string {
	return []string{
		"table5", "table6", "fig11a", "fig11b", "fig11c", "fig12",
		"fig13", "fig14", "expressivity", "table7", "fig15", "fig16",
		"appendixE", "scaling",
	}
}

func runExperiment(exp string) error {
	exps := experimentsMap()
	if exp == "all" {
		for _, id := range allOrder() {
			exps[id]()
			fmt.Println()
		}
		return nil
	}
	f, ok := exps[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	f()
	return nil
}

// bars renders a labeled horizontal bar chart, the ASCII counterpart of
// the paper's bar figures. Values scale to the widest bar.
func bars(rows []experiments.SystemsRow, unit string) {
	maxV := 0.0
	for _, r := range rows {
		for _, v := range []float64{r.RR, r.FF, r.CLX} {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	const width = 40
	bar := func(v float64) string {
		n := int(v / maxV * width)
		out := ""
		for i := 0; i < n; i++ {
			out += "█"
		}
		if n == 0 && v > 0 {
			out = "▏"
		}
		return out
	}
	for _, r := range rows {
		fmt.Printf("%-8s RR  %8.1f%s %s\n", r.Label, r.RR, unit, bar(r.RR))
		fmt.Printf("%-8s FF  %8.1f%s %s\n", "", r.FF, unit, bar(r.FF))
		fmt.Printf("%-8s CLX %8.1f%s %s\n", "", r.CLX, unit, bar(r.CLX))
	}
}

func systemsHeader(title, unit string) {
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("%-8s %12s %12s %12s\n", "case", "RegexReplace", "FlashFill", "CLX")
	_ = unit
}

func printRows(rows []experiments.SystemsRow, format string) {
	for _, r := range rows {
		fmt.Printf("%-8s "+format+" "+format+" "+format+"\n", r.Label, r.RR, r.FF, r.CLX)
	}
}

func fig11a() {
	systemsHeader("Figure 11a: overall completion time (s)", "s")
	printRows(experiments.Fig11aCompletionTime(), "%12.1f")
	fmt.Println()
	bars(experiments.Fig11aCompletionTime(), "s")
}

func fig11b() {
	systemsHeader("Figure 11b: rounds of interactions", "")
	printRows(experiments.Fig11bInteractions(), "%12.0f")
}

func fig11c() {
	fmt.Println("== Figure 11c: interaction timestamps for 300(6) (s) ==")
	rr, ff, clx := experiments.Fig11cTimestamps()
	print1c := func(name string, ts []float64) {
		fmt.Printf("%-13s", name)
		for _, t := range ts {
			fmt.Printf(" %7.1f", t)
		}
		fmt.Println()
	}
	print1c("RegexReplace", rr)
	print1c("FlashFill", ff)
	print1c("CLX", clx)
}

func fig12() {
	systemsHeader("Figure 12: verification time (s)", "s")
	printRows(experiments.Fig12VerificationTime(), "%12.1f")
	fmt.Println()
	bars(experiments.Fig12VerificationTime(), "s")
	clx, ff, rr := experiments.VerificationGrowth()
	fmt.Printf("growth 10(2)->300(6): CLX %.1fx, FlashFill %.1fx, RegexReplace %.1fx"+
		"  (paper: 1.3x, 11.4x, -)\n", clx, ff, rr)
}

func fig13() {
	fmt.Println("== Figure 13: comprehension correct rate ==")
	fmt.Printf("%-13s %7s %7s %7s %8s\n", "system", "task 1", "task 2", "task 3", "overall")
	for _, q := range experiments.Fig13Comprehension() {
		fmt.Printf("%-13s %7.2f %7.2f %7.2f %8.2f\n",
			q.System, q.CorrectByTask[0], q.CorrectByTask[1], q.CorrectByTask[2], q.Overall)
	}
}

func fig14() {
	fmt.Println("== Figure 14: completion time per explainability task (s) ==")
	fmt.Printf("%-8s %12s %12s %12s\n", "task", "RegexReplace", "FlashFill", "CLX")
	printRows(experiments.Fig14TaskCompletion(), "%12.1f")
}

func table5() {
	fmt.Println("== Table 5: explainability test cases ==")
	fmt.Printf("%-7s %5s %7s %7s  %s\n", "TaskID", "Size", "AvgLen", "MaxLen", "DataType")
	for _, r := range experiments.Table5() {
		fmt.Printf("%-7s %5d %7.1f %7d  %s\n", r.TaskID, r.Size, r.AvgLen, r.MaxLen, r.DataType)
	}
}

func table6() {
	fmt.Println("== Table 6: benchmark test cases ==")
	fmt.Printf("%-10s %7s %8s %7s %7s\n", "Source", "#tests", "AvgSize", "AvgLen", "MaxLen")
	for _, r := range experiments.Table6() {
		fmt.Printf("%-10s %7d %8.1f %7.1f %7d\n", r.Source, r.Tests, r.AvgSize, r.AvgLen, r.MaxLen)
	}
}

func table7() {
	fmt.Println("== Table 7: user effort comparison (Steps) ==")
	vsFF, vsRR := experiments.Table7()
	n := vsFF.Wins + vsFF.Ties + vsFF.Losses
	pct := func(v int) float64 { return 100 * float64(v) / float64(n) }
	fmt.Printf("vs. FlashFill:    CLX wins %2d (%2.0f%%)  tie %2d (%2.0f%%)  loses %2d (%2.0f%%)\n",
		vsFF.Wins, pct(vsFF.Wins), vsFF.Ties, pct(vsFF.Ties), vsFF.Losses, pct(vsFF.Losses))
	fmt.Printf("vs. RegexReplace: CLX wins %2d (%2.0f%%)  tie %2d (%2.0f%%)  loses %2d (%2.0f%%)\n",
		vsRR.Wins, pct(vsRR.Wins), vsRR.Ties, pct(vsRR.Ties), vsRR.Losses, pct(vsRR.Losses))
	fmt.Println("(paper: vs FF 17/17/13; vs RR 33/12/2)")
}

func fig15() {
	fmt.Println("== Figure 15: per-task Step speedup of CLX ==")
	fmt.Printf("%-26s %8s %8s\n", "task", "vs FF", "vs RR")
	for _, s := range experiments.Fig15Speedups() {
		fmt.Printf("%-26s %7.1fx %7.1fx\n", s.Task, s.VsFF, s.VsRR)
	}
}

func fig16() {
	fmt.Println("== Figure 16: CLX Steps per test case (Selection/Adjust/Total) ==")
	steps := experiments.Fig16Steps()
	totals := make([]int, len(steps))
	for i, s := range steps {
		totals[i] = s.Total
	}
	sort.Ints(totals)
	fmt.Printf("%-26s %9s %6s %5s\n", "task", "selection", "adjust", "total")
	for _, s := range steps {
		fmt.Printf("%-26s %9d %6d %5d\n", s.Task, s.Selection, s.Adjust, s.Total)
	}
	fmt.Println("CDF of total Steps:")
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		idx := int(q*float64(len(totals))) - 1
		if idx < 0 {
			idx = 0
		}
		fmt.Printf("  %3.0f%% of tasks need <= %d Steps\n", q*100, totals[idx])
	}
}

func expressivity() {
	fmt.Println("== Expressivity (§7.4): perfect transformations ==")
	e := experiments.Expressivity()
	fmt.Printf("CLX          %d/%d (%2.0f%%)   paper: 42/47 (~90%%)\n", e.CLX, e.Total, 100*float64(e.CLX)/float64(e.Total))
	fmt.Printf("FlashFill    %d/%d (%2.0f%%)   paper: 45/47 (~96%%)\n", e.FF, e.Total, 100*float64(e.FF)/float64(e.Total))
	fmt.Printf("RegexReplace %d/%d (%2.0f%%)   paper: 46/47 (~98%%)\n", e.RR, e.Total, 100*float64(e.RR)/float64(e.Total))
}

func panel() {
	fmt.Println("== Participant panel: §7.2 means over 9 simulated cost profiles ==")
	fmt.Printf("%-8s %14s %14s %14s\n", "case", "RegexReplace", "FlashFill", "CLX")
	for _, pr := range experiments.Panel() {
		fmt.Printf("%-8s %9.1f s     %9.1f s     %9.1f s\n",
			pr.Case.Name, pr.MeanTotal[0], pr.MeanTotal[1], pr.MeanTotal[2])
	}
	fmt.Println("(verification-growth shape holds for every individual profile;")
	fmt.Println(" see TestShapeRobustAcrossParticipants)")
}

func scaling() {
	fmt.Println("== Steps vs input size (phone scenario, 4 formats) ==")
	fmt.Printf("%7s %10s %10s %10s\n", "rows", "CLX", "FlashFill", "RegexRepl")
	for _, r := range experiments.StepsVsSize() {
		fmt.Printf("%7d %10d %10d %10d\n", r.Rows, r.CLXSteps, r.FFSteps, r.RRSteps)
	}
	fmt.Println("(CLX Steps are size-independent; §7.2's time growth comes from")
	fmt.Println(" instance-level verification, not from extra user input)")
}

func appendixE() {
	fmt.Println("== Appendix E: CLX user effort breakdown ==")
	s := experiments.AppendixE()
	fmt.Printf("perfect program within 2 Steps: %4.0f%%   (paper ~79%%)\n", 100*s.PerfectWithin2Steps)
	fmt.Printf("single target selection:        %4.0f%%   (paper ~79%%)\n", 100*s.SingleSelection)
	fmt.Printf("no plan adjustment:             %4.0f%%   (paper ~50%%)\n", 100*s.ZeroAdjust)
	fmt.Printf("at most one adjustment:         %4.0f%%   (paper ~85%%)\n", 100*s.AtMostOneAdjust)
}
