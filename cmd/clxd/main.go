// Command clxd serves the CLX engine over HTTP as a small JSON API, the
// packaging a data-wrangling front end or pipeline would integrate:
//
//	clxd -addr :8080 [-workers n] [-store dir] [-pprof addr]
//	     [-log-format text|json] [-max-streams n] [-followers urls]
//	     [-session-ttl d] [-max-sessions n]
//
//	POST /v1/cluster    {"rows": [...]}                 -> pattern clusters
//	POST /v1/transform  {"rows": [...], "target": "…",  -> program + output
//	                     "repairs": [{"source":0,"alt":1}]}
//	POST /v1/apply      {"rows": [...], "program": {…}} -> output (stateless)
//	GET  /v1/stats      process counters (matcher-cache hit/miss/evict)
//	GET  /metrics       the same counters and more in Prometheus text format
//	GET  /healthz
//
// Every request is traced: a request ID (minted, or taken from an incoming
// X-Request-ID header) rides the request context into the structured
// access log — one line per request, -log-format json or text — and into
// pprof goroutine labels, which worker goroutines inherit, so CPU profiles
// slice by request. GET /metrics serves the process metric registry
// (pipeline stage latencies, streaming totals and per-chunk latency,
// matcher-cache hit/miss/evict, WAL append/compaction timings, HTTP
// request counts) in the Prometheus text exposition format with no
// third-party dependency.
//
// Concurrent streaming applies pass an admission policy (-admission):
// the default semaphore caps streams in flight at -max-streams (default
// 2× the CPU count) — each stream holds a chunk window of memory, so
// unbounded admission would defeat the engine's bounded-memory guarantee
// — while -admission=tokenbucket admits at a sustained -admission-rate
// streams/s with an -admission-burst allowance, trading the hard memory
// bound for burst absorption after idle periods. Rejected requests get
// 429 with the uniform error envelope and a Retry-After header derived
// from an EWMA of recent stream durations (floor 1s, cap 30s), so the
// backoff hint tracks actual load. Both sides of every decision are
// counted in /v1/stats and /metrics (clx_streams_admitted_total,
// clx_streams_rejected_total), so a load generator can reconcile its
// observed 200/429 split exactly against the server's accounting —
// clxload's A/B mode does.
//
// With -pprof <addr> the daemon additionally serves net/http/pprof on that
// address (kept off the API port so profile streaming bypasses its
// timeouts).
//
// With -store <dir> the daemon keeps a persistent program registry: the
// synthesize-once / apply-many split as API surface. Programs registered
// via POST /v1/programs survive restarts (append-only WAL + snapshot in
// <dir>) and are applied by id without any re-synthesis; every apply
// carries a drift report naming the live-data formats the stored program
// no longer covers. Without -store the registry is in-memory only.
//
//	POST   /v1/programs             {"rows": [...], "target": "…", "name": "…"}
//	GET    /v1/programs             registry listing (metadata only)
//	GET    /v1/programs/{id}        full entry incl. the auditable program
//	DELETE /v1/programs/{id}
//	POST   /v1/programs/{id}/apply  {"rows": [...]} -> output + drift report
//	POST   /v1/programs/{id}/apply/stream
//	    chunked bulk apply with bounded memory: the body is the raw column
//	    (?input=lines|ndjson|csv, ?col=, ?header=1 for csv; ?chunk= and
//	    ?workers= tune the pipeline), the response is NDJSON — one JSON
//	    string per transformed row in input order, flushed per chunk, then
//	    a trailer object with stream stats ({"done":true,...}) or an error
//	    frame if the source failed mid-stream
//
// Stateful interactive sessions hold the paper's cluster → label →
// transform → verify → repair loop server-side across requests, with
// incremental re-profiling on append and quantitatively-ranked repair
// candidates:
//
//	POST   /v1/sessions                {"rows": [...]} -> session id + profile
//	GET    /v1/sessions                registry listing (metadata only)
//	GET    /v1/sessions/{id}           profile, generation, staleness
//	GET    /v1/sessions/{id}/clusters  pattern hierarchy (?level=N)
//	POST   /v1/sessions/{id}/append    {"rows": [...]} incremental re-profile
//	POST   /v1/sessions/{id}/label     {"target": "…"} synthesize + install
//	GET    /v1/sessions/{id}/repair    ?source=N ranked candidate plans
//	POST   /v1/sessions/{id}/repair    {"source":i,"alt":j} or {"examples":{…}}
//	POST   /v1/sessions/{id}/commit    register into the program registry
//	DELETE /v1/sessions/{id}
//
// Sessions idle past -session-ttl are evicted; at most -max-sessions
// are held at once, and creates past the cap answer 429 with a
// Retry-After estimating the next expiry. A transformation labeled
// before an append answers 409 on repair/commit until re-labeled —
// staleness is an API-visible protocol, not a silent re-synthesis.
//
// With -followers <url,url,...> the daemon is a cluster replication
// leader: every program registration and deletion is shipped as WAL
// records to the listed follower clxd nodes (POST /v1/replication/wal)
// before the client is acknowledged, and a follower that restarts or
// falls behind is resynced with a full snapshot. The follower endpoints
// are always mounted, so any plain clxd can serve as a follower; put
// cmd/clxproxy in front to route reads across the fleet. The leader's
// shipping ledger rides /v1/stats under "replication".
//
// Target patterns accept both notations ("<D>3'-'<D>4" or
// "{digit}{3}-{digit}{4}"). The transform response carries, per source
// pattern, the rendered Replace operation, a before/after preview, and the
// ranked alternatives, so a client can implement the full
// verify-and-repair loop.
//
// Errors are a uniform JSON envelope {"error": "..."} with status 400
// (malformed request), 404 (unknown program id), or 413 (body over the
// request cap). The server carries read/write/idle timeouts and shuts
// down gracefully on SIGINT/SIGTERM, flushing the registry WAL into its
// snapshot before exiting.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"clx/internal/daemon"
	"clx/internal/fleet"
	"clx/internal/obs"
	"clx/internal/progstore"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0,
		"goroutine fan-out per request for profile/synthesize/transform (0 = one per CPU, 1 = serial)")
	storeDir := flag.String("store", "",
		"program registry directory (WAL + snapshot); empty keeps the registry in memory only")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof on this extra address (e.g. localhost:6060); empty disables it")
	logFormat := flag.String("log-format", "text",
		"structured request-log format: text or json")
	streams := flag.Int("max-streams", 2*runtime.GOMAXPROCS(0),
		"concurrent streaming-apply cap; requests over it get 429 + Retry-After")
	admissionFlag := flag.String("admission", "semaphore",
		"streaming admission policy: semaphore (cap in-flight streams at -max-streams) "+
			"or tokenbucket (admit at -admission-rate with -admission-burst)")
	admissionRateFlag := flag.Float64("admission-rate", 100,
		"tokenbucket admission: sustained streams/sec admitted")
	admissionBurstFlag := flag.Float64("admission-burst", 0,
		"tokenbucket admission: burst capacity in streams (0 = 2 x -max-streams)")
	followersFlag := flag.String("followers", "",
		"comma-separated follower base URLs; when set this node is a replication "+
			"leader and ships every registry write to them before acknowledging")
	sessionTTL := flag.Duration("session-ttl", 0,
		"idle lifetime of an interactive /v1/sessions session before eviction "+
			"(0 = 15m default, negative disables eviction)")
	maxSessions := flag.Int("max-sessions", 0,
		"concurrent interactive sessions held in memory; creates past the cap get "+
			"429 + Retry-After (0 = 256 default, negative unbounded)")
	flag.Parse()

	if *pprofAddr != "" {
		// A separate listener so profiling endpoints never share the API
		// port (or its timeouts — CPU profiles stream for 30s+).
		go func() {
			log.Printf("clxd pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Print("clxd: pprof server: ", err)
			}
		}()
	}

	st, err := progstore.Open(*storeDir)
	if err != nil {
		log.Fatal("clxd: ", err)
	}
	var repl *fleet.Replicator
	if *followersFlag != "" {
		var urls []string
		for _, u := range strings.Split(*followersFlag, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		// The retry loop re-ships to followers that were down when a write
		// flushed, so a bounced follower converges without operator action.
		repl = fleet.NewReplicator(st, urls, fleet.ReplicatorOptions{RetryInterval: time.Second})
		defer repl.Close()
	}
	srv, err := daemon.New(st, daemon.Config{
		Workers:        *workers,
		MaxStreams:     *streams,
		Admission:      *admissionFlag,
		AdmissionRate:  *admissionRateFlag,
		AdmissionBurst: *admissionBurstFlag,
		Logger:         obs.NewLogger(os.Stderr, *logFormat),
		Replicator:     repl,
		SessionTTL:     *sessionTTL,
		MaxSessions:    *maxSessions,
	})
	if err != nil {
		log.Fatal("clxd: ", err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("clxd listening on %s (workers=%d, 0=auto; store=%q, followers=%q)",
		*addr, *workers, *storeDir, *followersFlag)

	select {
	case err := <-errc:
		st.Close()
		log.Fatal("clxd: ", err)
	case <-ctx.Done():
		stop()
		log.Print("clxd: signal received, shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Print("clxd: shutdown: ", err)
		}
		// Fold the registry WAL into its snapshot so the next start
		// recovers from a single file read.
		if err := st.Close(); err != nil {
			log.Fatal("clxd: registry close: ", err)
		}
	}
}
