// Command clxd serves the CLX engine over HTTP as a small JSON API, the
// packaging a data-wrangling front end or pipeline would integrate:
//
//	clxd -addr :8080
//
//	POST /v1/cluster    {"rows": [...]}                 -> pattern clusters
//	POST /v1/transform  {"rows": [...], "target": "…",  -> program + output
//	                     "repairs": [{"source":0,"alt":1}]}
//	GET  /healthz
//
// Target patterns accept both notations ("<D>3'-'<D>4" or
// "{digit}{3}-{digit}{4}"). The transform response carries, per source
// pattern, the rendered Replace operation, a before/after preview, and the
// ranked alternatives, so a client can implement the full
// verify-and-repair loop.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"

	clx "clx"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0,
		"goroutine fan-out per request for profile/synthesize/transform (0 = one per CPU, 1 = serial)")
	flag.Parse()
	srvOpts.Workers = *workers
	log.Printf("clxd listening on %s (workers=%d, 0=auto)", *addr, *workers)
	log.Fatal(http.ListenAndServe(*addr, newMux()))
}

// srvOpts are the session options every handler uses; main overrides the
// worker fan-out from the -workers flag. The compiled-matcher cache in
// internal/rematch is process-wide, so repeated requests over similar
// columns share prepared matchers across handlers regardless of fan-out.
var srvOpts = clx.DefaultOptions()

func newMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	mux.HandleFunc("POST /v1/cluster", handleCluster)
	mux.HandleFunc("POST /v1/transform", handleTransform)
	mux.HandleFunc("POST /v1/tables/unify", handleUnify)
	mux.HandleFunc("POST /v1/apply", handleApply)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decode[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var v T
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return v, false
	}
	return v, true
}
