// Command clxd serves the CLX engine over HTTP as a small JSON API, the
// packaging a data-wrangling front end or pipeline would integrate:
//
//	clxd -addr :8080 [-workers n] [-store dir] [-pprof addr]
//	     [-log-format text|json] [-max-streams n]
//
//	POST /v1/cluster    {"rows": [...]}                 -> pattern clusters
//	POST /v1/transform  {"rows": [...], "target": "…",  -> program + output
//	                     "repairs": [{"source":0,"alt":1}]}
//	POST /v1/apply      {"rows": [...], "program": {…}} -> output (stateless)
//	GET  /v1/stats      process counters (matcher-cache hit/miss/evict)
//	GET  /metrics       the same counters and more in Prometheus text format
//	GET  /healthz
//
// Every request is traced: a request ID (minted, or taken from an incoming
// X-Request-ID header) rides the request context into the structured
// access log — one line per request, -log-format json or text — and into
// pprof goroutine labels, which worker goroutines inherit, so CPU profiles
// slice by request. GET /metrics serves the process metric registry
// (pipeline stage latencies, streaming totals and per-chunk latency,
// matcher-cache hit/miss/evict, WAL append/compaction timings, HTTP
// request counts) in the Prometheus text exposition format with no
// third-party dependency.
//
// Concurrent streaming applies pass an admission policy (-admission):
// the default semaphore caps streams in flight at -max-streams (default
// 2× the CPU count) — each stream holds a chunk window of memory, so
// unbounded admission would defeat the engine's bounded-memory guarantee
// — while -admission=tokenbucket admits at a sustained -admission-rate
// streams/s with an -admission-burst allowance, trading the hard memory
// bound for burst absorption after idle periods. Rejected requests get
// 429 with the uniform error envelope and a Retry-After header derived
// from an EWMA of recent stream durations (floor 1s, cap 30s), so the
// backoff hint tracks actual load. Both sides of every decision are
// counted in /v1/stats and /metrics (clx_streams_admitted_total,
// clx_streams_rejected_total), so a load generator can reconcile its
// observed 200/429 split exactly against the server's accounting —
// clxload's A/B mode does.
//
// With -pprof <addr> the daemon additionally serves net/http/pprof on that
// address (kept off the API port so profile streaming bypasses its
// timeouts).
//
// With -store <dir> the daemon keeps a persistent program registry: the
// synthesize-once / apply-many split as API surface. Programs registered
// via POST /v1/programs survive restarts (append-only WAL + snapshot in
// <dir>) and are applied by id without any re-synthesis; every apply
// carries a drift report naming the live-data formats the stored program
// no longer covers. Without -store the registry is in-memory only.
//
//	POST   /v1/programs             {"rows": [...], "target": "…", "name": "…"}
//	GET    /v1/programs             registry listing (metadata only)
//	GET    /v1/programs/{id}        full entry incl. the auditable program
//	DELETE /v1/programs/{id}
//	POST   /v1/programs/{id}/apply  {"rows": [...]} -> output + drift report
//	POST   /v1/programs/{id}/apply/stream
//	    chunked bulk apply with bounded memory: the body is the raw column
//	    (?input=lines|ndjson|csv, ?col=, ?header=1 for csv; ?chunk= and
//	    ?workers= tune the pipeline), the response is NDJSON — one JSON
//	    string per transformed row in input order, flushed per chunk, then
//	    a trailer object with stream stats ({"done":true,...}) or an error
//	    frame if the source failed mid-stream
//
// Target patterns accept both notations ("<D>3'-'<D>4" or
// "{digit}{3}-{digit}{4}"). The transform response carries, per source
// pattern, the rendered Replace operation, a before/after preview, and the
// ranked alternatives, so a client can implement the full
// verify-and-repair loop.
//
// Errors are a uniform JSON envelope {"error": "..."} with status 400
// (malformed request), 404 (unknown program id), or 413 (body over the
// request cap). The server carries read/write/idle timeouts and shuts
// down gracefully on SIGINT/SIGTERM, flushing the registry WAL into its
// snapshot before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	clx "clx"
	"clx/internal/automaton"
	"clx/internal/obs"
	"clx/internal/progstore"
	"clx/internal/rematch"
	"clx/internal/stream"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0,
		"goroutine fan-out per request for profile/synthesize/transform (0 = one per CPU, 1 = serial)")
	storeDir := flag.String("store", "",
		"program registry directory (WAL + snapshot); empty keeps the registry in memory only")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof on this extra address (e.g. localhost:6060); empty disables it")
	logFormat := flag.String("log-format", "text",
		"structured request-log format: text or json")
	streams := flag.Int("max-streams", maxStreams,
		"concurrent streaming-apply cap; requests over it get 429 + Retry-After")
	admissionFlag := flag.String("admission", admissionMode,
		"streaming admission policy: semaphore (cap in-flight streams at -max-streams) "+
			"or tokenbucket (admit at -admission-rate with -admission-burst)")
	admissionRateFlag := flag.Float64("admission-rate", admissionRate,
		"tokenbucket admission: sustained streams/sec admitted")
	admissionBurstFlag := flag.Float64("admission-burst", 0,
		"tokenbucket admission: burst capacity in streams (0 = 2 x -max-streams)")
	flag.Parse()
	srvOpts.Workers = *workers
	maxStreams = *streams
	admissionMode = *admissionFlag
	admissionRate = *admissionRateFlag
	admissionBurst = *admissionBurstFlag
	if admissionBurst <= 0 {
		admissionBurst = float64(2 * maxStreams)
	}
	if _, err := newAdmissionPolicy(admissionMode, maxStreams, admissionRate, admissionBurst); err != nil {
		log.Fatal("clxd: ", err)
	}
	if *pprofAddr != "" {
		// A separate listener so profiling endpoints never share the API
		// port (or its timeouts — CPU profiles stream for 30s+).
		go func() {
			log.Printf("clxd pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Print("clxd: pprof server: ", err)
			}
		}()
	}

	st, err := progstore.Open(*storeDir)
	if err != nil {
		log.Fatal("clxd: ", err)
	}
	srv := newServer(st)
	srv.logger = obs.NewLogger(os.Stderr, *logFormat)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("clxd listening on %s (workers=%d, 0=auto; store=%q)", *addr, *workers, *storeDir)

	select {
	case err := <-errc:
		st.Close()
		log.Fatal("clxd: ", err)
	case <-ctx.Done():
		stop()
		log.Print("clxd: signal received, shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Print("clxd: shutdown: ", err)
		}
		// Fold the registry WAL into its snapshot so the next start
		// recovers from a single file read.
		if err := st.Close(); err != nil {
			log.Fatal("clxd: registry close: ", err)
		}
	}
}

// srvOpts are the session options every handler uses; main overrides the
// worker fan-out from the -workers flag. The compiled-matcher cache in
// internal/rematch is process-wide, so repeated requests over similar
// columns share prepared matchers across handlers regardless of fan-out.
var srvOpts = clx.DefaultOptions()

// maxStreams caps concurrent streaming applies under the semaphore
// policy. Each stream holds up to chunk × MaxInFlight rows, so admission
// must be bounded for the engine's fixed-memory guarantee to survive a
// request burst. ~2 streams per CPU keeps the workers busy without
// stacking windows. A var so the flag and tests can override it before
// newServer.
var maxStreams = 2 * runtime.GOMAXPROCS(0)

// Admission policy selection (see admission.go). Vars so the flags and
// tests can override them before newServer; main validates the mode.
var (
	admissionMode  = "semaphore"
	admissionRate  = 100.0 // tokenbucket: sustained streams/sec
	admissionBurst = 0.0   // tokenbucket: burst size (<=0: 2 x maxStreams)
)

// server carries the shared daemon state: the program registry, the
// request logger, the streaming admission policy, and the stream-duration
// EWMA behind the Retry-After hint.
type server struct {
	store      *progstore.Store
	logger     *obs.Logger // nil logs nothing (tests)
	admission  admissionPolicy
	streamEWMA durationEWMA
}

func newServer(st *progstore.Store) *server {
	burst := admissionBurst
	if burst <= 0 {
		burst = float64(2 * maxStreams)
	}
	pol, err := newAdmissionPolicy(admissionMode, maxStreams, admissionRate, burst)
	if err != nil {
		// main validates the flag before newServer; reaching this is a
		// programmer error in tests.
		panic(err)
	}
	return &server{store: st, admission: pol}
}

// handler is the complete daemon handler: the route mux wrapped in the
// tracing/logging/metrics middleware.
func (s *server) handler() http.Handler { return s.withObs(s.mux()) }

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /metrics", obs.Handler())
	mux.HandleFunc("POST /v1/cluster", handleCluster)
	mux.HandleFunc("POST /v1/transform", handleTransform)
	mux.HandleFunc("POST /v1/tables/unify", handleUnify)
	mux.HandleFunc("POST /v1/apply", handleApply)
	mux.HandleFunc("POST /v1/programs", s.handleProgramRegister)
	mux.HandleFunc("GET /v1/programs", s.handleProgramList)
	mux.HandleFunc("GET /v1/programs/{id}", s.handleProgramGet)
	mux.HandleFunc("DELETE /v1/programs/{id}", s.handleProgramDelete)
	mux.HandleFunc("POST /v1/programs/{id}/apply", s.handleProgramApply)
	mux.HandleFunc("POST /v1/programs/{id}/apply/stream", s.handleProgramApplyStream)
	return mux
}

// statsResponse is the GET /v1/stats document: process-level counters a
// deployment scrapes to watch the daemon — the compiled-matcher cache
// (hit/miss/evict), the knob bounding memory growth on servers that see
// many distinct programs, the streaming bulk-apply totals (streams, rows,
// chunks, flagged, errors, peak in-flight window), the automaton
// compilation totals (a nonzero fallback count means some loaded programs
// apply through the backtracking engine instead of the fused automaton),
// the streaming admission ledger: which policy is in force and both
// sides of every decision, so a load generator's observed 200/429 split
// reconciles exactly against the server, and the profile-index counters:
// how many profile passes ran, on which execution plan, and how much of
// the row volume arrived incrementally.
type statsResponse struct {
	MatcherCache rematch.CacheStats       `json:"matcher_cache"`
	Streaming    stream.Counters          `json:"streaming"`
	Automaton    automaton.Counters       `json:"automaton"`
	Admission    admissionStats           `json:"admission"`
	ProfileIndex clx.ProfileIndexCounters `json:"profile_index"`
}

// admissionStats is the admission section of /v1/stats.
type admissionStats struct {
	// Policy is the -admission mode in force.
	Policy string `json:"policy"`
	// Admitted and Rejected count every decision since process start;
	// admitted + rejected equals the streaming requests that reached
	// admission, and rejected equals the 429s clients saw.
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	// InFlight is the clx_streams_in_flight gauge.
	InFlight int64 `json:"in_flight"`
	// RetryAfterSeconds is the hint the next 429 would carry (EWMA of
	// recent stream durations, floor 1s, cap 30s).
	RetryAfterSeconds int `json:"retry_after_seconds"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		MatcherCache: rematch.Stats(),
		Streaming:    stream.GlobalStats(),
		Automaton:    automaton.GlobalStats(),
		Admission: admissionStats{
			Policy:            s.admission.Name(),
			Admitted:          streamsAdmitted.Value(),
			Rejected:          streamsRejected.Value(),
			InFlight:          streamsInFlight.Value(),
			RetryAfterSeconds: s.streamEWMA.retryAfterSeconds(),
		},
		ProfileIndex: clx.ProfileIndexStats(),
	})
}

// maxBody caps every request body; oversized bodies get the 413 envelope.
// A var so tests can shrink it.
var maxBody int64 = 32 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false) // keep "<D>3" readable
	_ = enc.Encode(v)
}

// errorJSON is the uniform error envelope every failure path returns.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

func decode[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var v T
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return v, false
	}
	return v, true
}
