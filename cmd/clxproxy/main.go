// Command clxproxy fronts a fleet of clxd nodes with a pluggable
// routing policy:
//
//	clxproxy -addr :8090 -nodes http://n0:8080,http://n1:8080 [-policy name]
//
// The first node in -nodes is the leader: registry writes (POST
// /v1/programs, DELETE) always go to it, and it should be running with
// -followers pointing at the rest so every write is replicated before
// it is acknowledged. Program applies, streaming applies, and stateless
// compute are spread across all nodes by -policy:
//
//	round-robin   uniform request counts (the default)
//	least-loaded  fewest streams in flight, scraped from each node's
//	              /v1/stats and cached for -probe-ttl
//	affinity      rendezvous-hash on program id, keeping each node's
//	              compiled-matcher/automaton caches hot for the
//	              programs it owns
//
// Node backpressure passes through untouched: a 429's Retry-After
// header is the node's own EWMA-derived hint, never minted by the
// proxy; idempotent applies are retried on the remaining nodes first.
// Streaming responses are forwarded line-by-line, and a node dying
// mid-stream becomes the documented {"done":false,"error":...} trailer
// frame, not a hang. GET /v1/proxy/stats serves the routing ledger
// (per-node picks, retries, mid-stream failures); GET /metrics serves
// the proxy's own Prometheus-format registry (clx_proxy_*).
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"clx/internal/fleet"
	"clx/internal/fleet/routing"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	nodes := flag.String("nodes", "",
		"comma-separated clxd base URLs; the first is the leader (registry writes go to it)")
	policy := flag.String("policy", "round-robin",
		"routing policy: "+strings.Join(routing.Names, ", "))
	probeTTL := flag.Duration("probe-ttl", 250*time.Millisecond,
		"least-loaded: how long a scraped /v1/stats in-flight value stays fresh")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*nodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatal("clxproxy: -nodes is required (comma-separated clxd base URLs)")
	}
	pol, err := routing.New(*policy)
	if err != nil {
		log.Fatal("clxproxy: ", err)
	}
	proxy, err := fleet.NewProxy(urls, fleet.ProxyOptions{Policy: pol, ProbeTTL: *probeTTL})
	if err != nil {
		log.Fatal("clxproxy: ", err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           proxy,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("clxproxy listening on %s (policy=%s, nodes=%d)", *addr, pol.Name(), len(urls))
	log.Fatal("clxproxy: ", srv.ListenAndServe())
}
