package main

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	clx "clx"
	"clx/internal/daemon"
	"clx/internal/progstore"
)

// sessionDaemon spins up an in-memory clxd for the CLI to talk to.
func sessionDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := progstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := daemon.New(st, daemon.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func writeColumn(t *testing.T, dir, name string, rows ...string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(strings.Join(rows, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSessionCommand drives the full loop — create, clusters, append,
// label, ranked candidates, repair pick, commit — against a live daemon
// and checks the committed program is served by the registry.
func TestSessionCommand(t *testing.T) {
	ts := sessionDaemon(t)
	dir := t.TempDir()
	seed := []string{"31/12/2019", "28/02/2020", "12-31-2019"}
	appended := []string{"01/07/2021"}
	dataFile := writeColumn(t, dir, "dates.txt", seed...)
	appendFile := writeColumn(t, dir, "more.txt", appended...)
	const target = "<D>2'-'<D>2'-'<D>4"

	// Find a real non-selected candidate through the library over the same
	// final column, so the CLI's -repair spec names a valid (source, alt).
	lib := clx.NewSession(append(append([]string{}, seed...), appended...))
	tr, err := lib.Label(clx.MustParsePattern(target))
	if err != nil {
		t.Fatal(err)
	}
	cands := tr.RepairCandidates(0)
	if len(cands) < 2 {
		t.Fatalf("want >= 2 candidates for source 0, got %d", len(cands))
	}
	pick := cands[0]
	if pick.Selected {
		pick = cands[1]
	}

	out, _, err := runCLI(t, "",
		"session", "-addr", ts.URL, "-file", dataFile, "-append", appendFile,
		"-target", target, "-candidates", "0",
		"-repair", fmt.Sprintf("%d=%d", pick.Source, pick.Alt),
		"-commit", "-name", "cli-dates")
	if err != nil {
		t.Fatalf("session: %v\n%s", err, out)
	}
	for _, want := range []string{
		"session s-",
		"clusters:",
		"appended 1 rows (4 total, generation 1)",
		fmt.Sprintf("labeled %q", target),
		"repair candidates for source 0",
		fmt.Sprintf("repaired source %d -> alt %d", pick.Source, pick.Alt),
		"committed program ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("session output missing %q:\n%s", want, out)
		}
	}

	// The committed id must serve from the registry.
	m := regexp.MustCompile(`committed program (\S+) v(\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no committed program id in output:\n%s", out)
	}
	var entry struct {
		ID   string `json:"id"`
		Name string `json:"name"`
	}
	if err := sessionHTTP("GET", ts.URL+"/v1/programs/"+m[1], nil, &entry); err != nil {
		t.Fatalf("registry lookup: %v", err)
	}
	if entry.Name != "cli-dates" {
		t.Errorf("registered name = %q, want cli-dates", entry.Name)
	}

	// Without -keep the CLI deletes its session on the way out.
	var list struct {
		Sessions []struct {
			ID string `json:"id"`
		} `json:"sessions"`
	}
	if err := sessionHTTP("GET", ts.URL+"/v1/sessions", nil, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 0 {
		t.Errorf("sessions left behind: %+v", list.Sessions)
	}
}

// TestSessionKeep leaves the session alive for later requests.
func TestSessionKeep(t *testing.T) {
	ts := sessionDaemon(t)
	dataFile := writeColumn(t, t.TempDir(), "rows.txt", "alpha", "beta")

	out, _, err := runCLI(t, "", "session", "-addr", ts.URL, "-file", dataFile, "-keep")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "kept session s-") {
		t.Errorf("output missing keep notice:\n%s", out)
	}
	var list struct {
		Sessions []struct {
			ID string `json:"id"`
		} `json:"sessions"`
	}
	if err := sessionHTTP("GET", ts.URL+"/v1/sessions", nil, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 1 {
		t.Fatalf("sessions = %+v, want exactly the kept one", list.Sessions)
	}
}

func TestSessionFlagValidation(t *testing.T) {
	dataFile := writeColumn(t, t.TempDir(), "rows.txt", "alpha")

	if _, _, err := runCLI(t, "", "session", "-file", dataFile); err == nil ||
		!strings.Contains(err.Error(), "-addr") {
		t.Errorf("missing -addr: err = %v", err)
	}

	ts := sessionDaemon(t)
	if _, _, err := runCLI(t, "", "session", "-addr", ts.URL, "-file", dataFile, "-commit"); err == nil ||
		!strings.Contains(err.Error(), "require -target") {
		t.Errorf("commit without target: err = %v", err)
	}
	// The guard runs after create, so the doomed session must not leak.
	var list struct {
		Sessions []struct {
			ID string `json:"id"`
		} `json:"sessions"`
	}
	if err := sessionHTTP("GET", ts.URL+"/v1/sessions", nil, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 0 {
		t.Errorf("sessions leaked after failed run: %+v", list.Sessions)
	}
}
