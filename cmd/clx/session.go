// The session subcommand drives a clxd daemon's stateful interactive
// session API (/v1/sessions) through the paper's loop in one shot:
// create from the uploaded column, browse clusters, optionally append a
// second file, label a target, print the quantitatively-ranked repair
// candidates, apply repair picks or example feedback, and commit the
// verified program into the daemon's registry. The column is profiled
// on the server — unlike every other subcommand, no local clx.Session
// is built.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// sessionCLI carries the flag values the session subcommand consumes.
type sessionCLI struct {
	addr       string // daemon base URL
	target     string // label target (optional: without it the run stops at clusters)
	repairSpec string // source=alt picks, comma-separated
	examples   string // in=>out example feedback, comma-separated
	appendFile string // second column file to append after create
	candidates int    // source index to print ranked candidates for (-1 = off)
	commitName string // registry label for the committed program
	commit     bool   // commit the transformation into the registry
	keep       bool   // leave the session on the daemon at exit
	csvMode    bool
	col        int
	header     bool
}

// sessionHTTP performs one JSON call against the daemon, decoding the
// uniform {"error": "..."} envelope into a CLI error on non-2xx. A 429
// surfaces the server's Retry-After hint.
func sessionHTTP(method, url string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var envelope struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
			msg = envelope.Error
		}
		if ra := resp.Header.Get("Retry-After"); resp.StatusCode == http.StatusTooManyRequests && ra != "" {
			return fmt.Errorf("%s %s: %d: %s (retry after %ss)", method, url, resp.StatusCode, msg, ra)
		}
		return fmt.Errorf("%s %s: %d: %s", method, url, resp.StatusCode, msg)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// Wire shapes for the slices of the session API the CLI prints. Kept
// local: the CLI is a daemon client and speaks only the JSON contract.
type sessionWire struct {
	ID           string `json:"id"`
	Rows         int    `json:"rows"`
	LeafPatterns int    `json:"leaf_patterns"`
	Levels       int    `json:"levels"`
	Generation   uint64 `json:"generation"`
	Labeled      bool   `json:"labeled"`
	Stale        bool   `json:"stale"`
	Appended     int    `json:"appended"`
}

type sessionClustersWire struct {
	Clusters []struct {
		Pattern string `json:"pattern"`
		NL      string `json:"nl"`
		Count   int    `json:"count"`
		Sample  string `json:"sample"`
	} `json:"clusters"`
}

type sessionLabelWire struct {
	Ops []struct {
		NL          string `json:"nl"`
		Replacement string `json:"replacement"`
		Source      string `json:"source"`
	} `json:"ops"`
	Sources []struct {
		Index   int    `json:"index"`
		Pattern string `json:"pattern"`
		Plans   int    `json:"plans"`
	} `json:"sources"`
	Flagged    []int  `json:"flagged"`
	Generation uint64 `json:"generation"`
}

type sessionCandidatesWire struct {
	Candidates []struct {
		Source       int     `json:"source"`
		Alt          int     `json:"alt"`
		NL           string  `json:"nl"`
		Replacement  string  `json:"replacement"`
		Residual     int     `json:"residual"`
		EditDistance int     `json:"edit_distance"`
		DL           float64 `json:"dl"`
		Score        float64 `json:"score"`
		Selected     bool    `json:"selected"`
	} `json:"candidates"`
}

type sessionCommitWire struct {
	ID      string `json:"id"`
	Version int    `json:"version"`
	Name    string `json:"name"`
	Target  string `json:"target"`
	Flagged []int  `json:"flagged"`
}

// runSession drives the interactive loop against the daemon at c.addr
// with the already-read column as the session's seed.
func runSession(stdout, stderr io.Writer, c sessionCLI, data []string) error {
	if c.addr == "" {
		return fmt.Errorf("session requires -addr <daemon base URL>")
	}
	if len(data) == 0 {
		return fmt.Errorf("session requires a non-empty input column")
	}
	base := strings.TrimRight(c.addr, "/")

	var sess sessionWire
	if err := sessionHTTP("POST", base+"/v1/sessions",
		map[string][]string{"rows": data}, &sess); err != nil {
		return err
	}
	sessURL := base + "/v1/sessions/" + sess.ID
	fmt.Fprintf(stdout, "session %s: %d rows, %d leaf patterns, %d levels\n",
		sess.ID, sess.Rows, sess.LeafPatterns, sess.Levels)
	// Past this point the session exists server-side; clean it up on any
	// exit path unless the user asked to keep it for later requests.
	defer func() {
		if c.keep {
			fmt.Fprintf(stdout, "kept session %s on %s\n", sess.ID, base)
			return
		}
		if err := sessionHTTP("DELETE", sessURL, nil, nil); err != nil {
			fmt.Fprintln(stderr, "clx: session delete:", err)
		}
	}()

	var clusters sessionClustersWire
	if err := sessionHTTP("GET", sessURL+"/clusters", nil, &clusters); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "clusters:")
	for _, cl := range clusters.Clusters {
		fmt.Fprintf(stdout, "  %-30s %4d rows  e.g. %q\n", cl.Pattern, cl.Count, cl.Sample)
	}

	if c.appendFile != "" {
		rows, err := readColumn(c.appendFile, strings.NewReader(""), c.csvMode, c.col, c.header)
		if err != nil {
			return err
		}
		var ap sessionWire
		if err := sessionHTTP("POST", sessURL+"/append",
			map[string][]string{"rows": rows}, &ap); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "appended %d rows (%d total, generation %d)\n",
			ap.Appended, ap.Rows, ap.Generation)
	}

	if c.target == "" {
		if c.repairSpec != "" || c.examples != "" || c.commit {
			return fmt.Errorf("session -repair/-examples/-commit require -target")
		}
		return nil
	}

	var label sessionLabelWire
	if err := sessionHTTP("POST", sessURL+"/label",
		map[string]string{"target": c.target}, &label); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "labeled %q: %d ops, %d flagged rows (generation %d)\n",
		c.target, len(label.Ops), len(label.Flagged), label.Generation)
	for i, op := range label.Ops {
		fmt.Fprintf(stdout, "  op %d: %s -> %s\n", i, op.NL, op.Replacement)
	}
	for _, src := range label.Sources {
		fmt.Fprintf(stdout, "  source %d: %s (%d ranked plans)\n", src.Index, src.Pattern, src.Plans)
	}

	if c.candidates >= 0 {
		var cands sessionCandidatesWire
		if err := sessionHTTP("GET",
			fmt.Sprintf("%s/repair?source=%d", sessURL, c.candidates), nil, &cands); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "repair candidates for source %d (best first):\n", c.candidates)
		fmt.Fprintf(stdout, "    %-4s %-9s %-5s %-9s %s\n", "alt", "residual", "edit", "score", "replacement")
		for _, cd := range cands.Candidates {
			mark := " "
			if cd.Selected {
				mark = "*"
			}
			fmt.Fprintf(stdout, "  %s %-4d %-9d %-5d %-9.2f %s\n",
				mark, cd.Alt, cd.Residual, cd.EditDistance, cd.Score, cd.Replacement)
		}
	}

	if c.repairSpec != "" {
		for _, part := range strings.Split(c.repairSpec, ",") {
			var srcIdx, alt int
			if _, err := fmt.Sscanf(part, "%d=%d", &srcIdx, &alt); err != nil {
				return fmt.Errorf("bad repair %q, want source=alt", part)
			}
			if err := sessionHTTP("POST", sessURL+"/repair",
				map[string]int{"source": srcIdx, "alt": alt}, &label); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "repaired source %d -> alt %d (%d flagged rows)\n",
				srcIdx, alt, len(label.Flagged))
		}
	}

	if c.examples != "" {
		ex := map[string]string{}
		for _, pair := range strings.Split(c.examples, ",") {
			in, out, ok := strings.Cut(pair, "=>")
			if !ok {
				return fmt.Errorf("bad example %q, want input=>output", pair)
			}
			ex[in] = out
		}
		if err := sessionHTTP("POST", sessURL+"/repair",
			map[string]map[string]string{"examples": ex}, &label); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "repaired from %d examples (%d flagged rows)\n",
			len(ex), len(label.Flagged))
	}

	if c.commit {
		var entry sessionCommitWire
		if err := sessionHTTP("POST", sessURL+"/commit",
			map[string]string{"name": c.commitName}, &entry); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "committed program %s v%d (name %q, target %s, %d flagged)\n",
			entry.ID, entry.Version, entry.Name, entry.Target, len(entry.Flagged))
	}
	return nil
}
