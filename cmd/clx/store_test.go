package main

import (
	"strings"
	"testing"
)

// The CLI writes the same registry clxd serves: transform -store
// registers, programs lists, apply -store/-id runs without re-synthesis
// and reports drift on stderr.
func TestStoreBridgeRoundTrip(t *testing.T) {
	dir := t.TempDir()

	out, errw, err := runCLI(t, phoneInput, "transform",
		"-target", "<D>3'-'<D>3'-'<D>4", "-store", dir, "-name", "phones")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw, "registered p000001 v1") {
		t.Fatalf("stderr missing registration: %q", errw)
	}
	wantOut := out

	list, _, err := runCLI(t, "", "programs", "-store", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(list, "p000001") || !strings.Contains(list, "phones") ||
		!strings.Contains(list, "<D>3'-'<D>3'-'<D>4") {
		t.Fatalf("programs listing = %q", list)
	}

	// Apply by id over the original rows: byte-identical to transform.
	out, errw, err = runCLI(t, phoneInput, "apply", "-store", dir, "-id", "p000001")
	if err != nil {
		t.Fatal(err)
	}
	if out != wantOut {
		t.Errorf("apply output %q differs from transform output %q", out, wantOut)
	}
	// The N/A row never matched a source pattern at synthesis time either;
	// the drift report owns every uncovered row, known or novel.
	if !strings.Contains(errw, "drift: 1/5 rows") || !strings.Contains(errw, "N/A") {
		t.Errorf("stderr missing N/A drift: %q", errw)
	}

	// A novel format drifts and is reported.
	_, errw, err = runCLI(t, "(734) 645-8397\n+1 917 555 0199\n", "apply", "-store", dir, "-id", "p000001")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw, "drift: 1/2 rows") || !strings.Contains(errw, "+1 917 555 0199") {
		t.Errorf("stderr missing drift report: %q", errw)
	}

	if _, _, err := runCLI(t, "x\n", "apply", "-store", dir, "-id", "p999999"); err == nil {
		t.Error("apply with unknown id should fail")
	}
	if _, _, err := runCLI(t, "x\n", "apply", "-store", dir); err == nil {
		t.Error("apply -store without -id should fail")
	}
}
