package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// The CLI writes the same registry clxd serves: transform -store
// registers, programs lists, apply -store/-id runs without re-synthesis
// and reports drift on stderr.
func TestStoreBridgeRoundTrip(t *testing.T) {
	dir := t.TempDir()

	out, errw, err := runCLI(t, phoneInput, "transform",
		"-target", "<D>3'-'<D>3'-'<D>4", "-store", dir, "-name", "phones")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw, "registered p000001 v1") {
		t.Fatalf("stderr missing registration: %q", errw)
	}
	wantOut := out

	list, _, err := runCLI(t, "", "programs", "-store", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(list, "p000001") || !strings.Contains(list, "phones") ||
		!strings.Contains(list, "<D>3'-'<D>3'-'<D>4") {
		t.Fatalf("programs listing = %q", list)
	}

	// Apply by id over the original rows: byte-identical to transform.
	out, errw, err = runCLI(t, phoneInput, "apply", "-store", dir, "-id", "p000001")
	if err != nil {
		t.Fatal(err)
	}
	if out != wantOut {
		t.Errorf("apply output %q differs from transform output %q", out, wantOut)
	}
	// The N/A row never matched a source pattern at synthesis time either;
	// the drift report owns every uncovered row, known or novel.
	if !strings.Contains(errw, "drift: 1/5 rows") || !strings.Contains(errw, "N/A") {
		t.Errorf("stderr missing N/A drift: %q", errw)
	}

	// A novel format drifts and is reported.
	_, errw, err = runCLI(t, "(734) 645-8397\n+1 917 555 0199\n", "apply", "-store", dir, "-id", "p000001")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw, "drift: 1/2 rows") || !strings.Contains(errw, "+1 917 555 0199") {
		t.Errorf("stderr missing drift report: %q", errw)
	}

	if _, _, err := runCLI(t, "x\n", "apply", "-store", dir, "-id", "p999999"); err == nil {
		t.Error("apply with unknown id should fail")
	}
	if _, _, err := runCLI(t, "x\n", "apply", "-store", dir); err == nil {
		t.Error("apply -store without -id should fail")
	}
}

// apply -stream over the registry: byte-identical stdout to the buffered
// apply, summary on stderr, and the saved-file path works too.
func TestApplyStreamMatchesBuffered(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := runCLI(t, phoneInput, "transform",
		"-target", "<D>3'-'<D>3'-'<D>4", "-store", dir); err != nil {
		t.Fatal(err)
	}
	want, _, err := runCLI(t, phoneInput, "apply", "-store", dir, "-id", "p000001")
	if err != nil {
		t.Fatal(err)
	}
	got, errw, err := runCLI(t, phoneInput, "apply", "-stream",
		"-store", dir, "-id", "p000001", "-chunk", "2", "-workers", "4")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("stream output %q differs from buffered %q", got, want)
	}
	if !strings.Contains(errw, "streaming through p000001 v1") ||
		!strings.Contains(errw, "streamed 5 rows") ||
		!strings.Contains(errw, "1 rows matched no pattern") {
		t.Errorf("stream stderr = %q", errw)
	}

	// Saved-program file path, CSV input.
	prog := filepath.Join(dir, "prog.json")
	if _, _, err := runCLI(t, phoneInput, "transform",
		"-target", "<D>3'-'<D>3'-'<D>4", "-save", prog); err != nil {
		t.Fatal(err)
	}
	csvIn := "who,phone\nkate,(734) 645-8397\nbob,734.236.3466\n"
	got, _, err = runCLI(t, csvIn, "apply", "-stream", "-program", prog,
		"-csv", "-col", "1", "-header")
	if err != nil {
		t.Fatal(err)
	}
	if got != "734-645-8397\n734-236-3466\n" {
		t.Errorf("csv stream output = %q", got)
	}
}
