// Whole-CSV transformation: apply per-column target patterns to a CSV file
// in one pass.
//
//	clx table -csv -file data.csv -header \
//	    -spec "1=<D>3'-'<D>3'-'<D>4;3={digit}{2}/{digit}{2}"
//
// Each spec entry is column=target (0-based column index; either pattern
// notation). Unspecified columns pass through; cells matching no known
// format stay unchanged and are reported on stderr.
package main

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	clx "clx"
)

// columnSpec is one column=target entry.
type columnSpec struct {
	col    int
	target clx.Pattern
}

func parseSpec(spec string) ([]columnSpec, error) {
	if spec == "" {
		return nil, fmt.Errorf("table requires -spec column=target[;column=target...]")
	}
	var out []columnSpec
	seen := map[int]bool{}
	for _, part := range strings.Split(spec, ";") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad spec entry %q, want column=target", part)
		}
		col, err := strconv.Atoi(strings.TrimSpace(kv[0]))
		if err != nil || col < 0 {
			return nil, fmt.Errorf("bad column index %q", kv[0])
		}
		if seen[col] {
			return nil, fmt.Errorf("column %d specified twice", col)
		}
		seen[col] = true
		target, err := clx.ParseAnyPattern(strings.TrimSpace(kv[1]))
		if err != nil {
			return nil, fmt.Errorf("column %d: %w", col, err)
		}
		out = append(out, columnSpec{col: col, target: target})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].col < out[b].col })
	return out, nil
}

// transformCSV reads all records, synthesizes one transformation per
// specified column, applies them, and writes the result.
func transformCSV(in io.Reader, stdout, stderr io.Writer, spec string, header bool) error {
	specs, err := parseSpec(spec)
	if err != nil {
		return err
	}
	cr := csv.NewReader(in)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return err
	}
	var head []string
	if header && len(records) > 0 {
		head, records = records[0], records[1:]
	}
	for _, cs := range specs {
		for i, rec := range records {
			if cs.col >= len(rec) {
				return fmt.Errorf("row %d has %d columns, spec needs index %d",
					i, len(rec), cs.col)
			}
		}
	}
	for _, cs := range specs {
		column := make([]string, len(records))
		for i, rec := range records {
			column[i] = rec[cs.col]
		}
		tr, err := clx.NewSession(column).Label(cs.target)
		if err != nil {
			return fmt.Errorf("column %d: %w", cs.col, err)
		}
		out, flagged := tr.Run()
		for i := range records {
			records[i][cs.col] = out[i]
		}
		name := strconv.Itoa(cs.col)
		if head != nil && cs.col < len(head) {
			name = head[cs.col]
		}
		if len(flagged) > 0 {
			fmt.Fprintf(stderr, "column %s: %d cells left unchanged (rows %v)\n",
				name, len(flagged), flagged)
		} else {
			fmt.Fprintf(stderr, "column %s: all cells transformed\n", name)
		}
	}
	cw := csv.NewWriter(stdout)
	if head != nil {
		if err := cw.Write(head); err != nil {
			return err
		}
	}
	if err := cw.WriteAll(records); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
