package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, stdin string, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errw bytes.Buffer
	err = run(args, strings.NewReader(stdin), &out, &errw)
	return out.String(), errw.String(), err
}

const phoneInput = "(734) 645-8397\n(734)586-7252\n734-422-8073\n734.236.3466\nN/A\n"

func TestClusterCommand(t *testing.T) {
	out, _, err := runCLI(t, phoneInput, "cluster")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"'('<D>3')'' '<D>3'-'<D>4", "<U>'/'<U>", "e.g. (734) 645-8397"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster output missing %q:\n%s", want, out)
		}
	}
}

func TestClusterLevels(t *testing.T) {
	out, _, err := runCLI(t, phoneInput, "cluster", "-levels")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"level 3:", "level 0:", "<AN>+"} {
		if !strings.Contains(out, want) {
			t.Errorf("levels output missing %q", want)
		}
	}
}

func TestTransformCommand(t *testing.T) {
	out, errw, err := runCLI(t, phoneInput, "transform", "-target", "<D>3'-'<D>3'-'<D>4")
	if err != nil {
		t.Fatal(err)
	}
	wantLines := []string{"734-645-8397", "734-586-7252", "734-422-8073", "734-236-3466", "N/A"}
	gotLines := strings.Split(strings.TrimSpace(out), "\n")
	if len(gotLines) != len(wantLines) {
		t.Fatalf("stdout lines = %d, want %d:\n%s", len(gotLines), len(wantLines), out)
	}
	for i, want := range wantLines {
		if gotLines[i] != want {
			t.Errorf("line %d = %q, want %q", i, gotLines[i], want)
		}
	}
	if !strings.Contains(errw, "Replace /^") {
		t.Errorf("stderr missing program: %q", errw)
	}
	if !strings.Contains(errw, "left unchanged") {
		t.Errorf("stderr missing flagged-row note: %q", errw)
	}
}

func TestTransformNLTarget(t *testing.T) {
	out, _, err := runCLI(t, "(917) 555-0100\n", "transform",
		"-target", "{digit}{3}-{digit}{3}-{digit}{4}")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "917-555-0100") {
		t.Errorf("out = %q", out)
	}
}

func TestExplainCommand(t *testing.T) {
	out, _, err := runCLI(t, phoneInput, "explain", "-target", "<D>3'-'<D>3'-'<D>4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "->") {
		t.Errorf("explain output missing preview: %q", out)
	}
	if !strings.Contains(out, "alternatives for source") {
		t.Errorf("explain output missing alternatives: %q", out)
	}
}

func TestRepairFlag(t *testing.T) {
	in := "31/12/2019\n28/02/2020\n12-31-2019\n"
	// Default keeps field order; repair 0=1 selects the swap.
	out0, _, err := runCLI(t, in, "transform", "-target", "<D>2'-'<D>2'-'<D>4")
	if err != nil {
		t.Fatal(err)
	}
	out1, _, err := runCLI(t, in, "transform", "-target", "<D>2'-'<D>2'-'<D>4", "-repair", "0=1")
	if err != nil {
		t.Fatal(err)
	}
	if out0 == out1 {
		t.Error("repair had no effect")
	}
	if !strings.Contains(out1, "12-31-2019") {
		t.Errorf("repaired output = %q", out1)
	}
}

func TestCSVInput(t *testing.T) {
	csvIn := "name,phone\nalice,(734) 645-8397\nbob,734.236.3466\n"
	out, _, err := runCLI(t, csvIn, "cluster", "-csv", "-col", "1", "-header")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "'('<D>3')'' '<D>3'-'<D>4") {
		t.Errorf("csv cluster output = %q", out)
	}
	if strings.Contains(out, "phone") {
		t.Error("header row should be skipped")
	}
}

func TestCSVColumnOutOfRange(t *testing.T) {
	if _, _, err := runCLI(t, "a,b\n", "cluster", "-csv", "-col", "5"); err == nil {
		t.Error("out-of-range column should error")
	}
}

func TestFileInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "col.txt")
	if err := os.WriteFile(path, []byte("123-4567\n999-0000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, "", "cluster", "-file", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<D>3'-'<D>4") {
		t.Errorf("file cluster output = %q", out)
	}
	if _, _, err := runCLI(t, "", "cluster", "-file", filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should error")
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"transform"},                       // missing -target
		{"transform", "-target", "{bogus}"}, // bad in both notations
		{"transform", "-target", "<D>", "-repair", "xx"}, // bad repair
		{"transform", "-target", "<D>", "-repair", "0=999"},
	}
	for _, args := range cases {
		if _, _, err := runCLI(t, "1\n2\n", args...); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	out, _, err := runCLI(t, "", "cluster")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("empty input should produce no clusters: %q", out)
	}
}

func TestSaveAndApply(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "prog.json")
	_, _, err := runCLI(t, phoneInput, "transform",
		"-target", "<D>3'-'<D>3'-'<D>4", "-save", prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(prog); err != nil {
		t.Fatal("saved program missing:", err)
	}
	// Apply the saved program to fresh data without re-synthesis.
	out, errw, err := runCLI(t, "(917) 555-0100\nN/A\n", "apply", "-program", prog)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "917-555-0100" || lines[1] != "N/A" {
		t.Errorf("apply output = %v", lines)
	}
	if !strings.Contains(errw, "left unchanged") {
		t.Errorf("stderr = %q", errw)
	}
	// Missing/bad program file errors.
	if _, _, err := runCLI(t, "x\n", "apply"); err == nil {
		t.Error("apply without -program should error")
	}
	if _, _, err := runCLI(t, "x\n", "apply", "-program", filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing program file should error")
	}
}

// apply -stream over NDJSON input: values survive framing losslessly and
// the output matches the buffered apply.
func TestApplyStreamNDJSON(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "prog.json")
	if _, _, err := runCLI(t, phoneInput, "transform",
		"-target", "<D>3'-'<D>3'-'<D>4", "-save", prog); err != nil {
		t.Fatal(err)
	}
	in := "\"(917) 555-0100\"\n\"734.236.3466\"\n\"N/A\"\n"
	out, _, err := runCLI(t, in, "apply", "-stream", "-ndjson", "-program", prog)
	if err != nil {
		t.Fatal(err)
	}
	if want := "917-555-0100\n734-236-3466\nN/A\n"; out != want {
		t.Errorf("ndjson stream output = %q, want %q", out, want)
	}
}

// The exit-code contract of apply -stream on a mid-stream source error: the
// command fails (non-zero exit via run's error), the rows transformed
// before the error stay on stdout, and the diagnostic names the bad row
// and how many rows made it.
func TestApplyStreamMidStreamErrorExit(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "prog.json")
	if _, _, err := runCLI(t, phoneInput, "transform",
		"-target", "<D>3'-'<D>3'-'<D>4", "-save", prog); err != nil {
		t.Fatal(err)
	}
	// Two valid NDJSON rows, then a malformed tail. chunk=1/workers=1 makes
	// the flush boundary deterministic: both valid rows are written before
	// the reader hits the bad line.
	in := "\"(917) 555-0100\"\n\"734.236.3466\"\nnot json\n\"(313) 263-1192\"\n"
	out, _, err := runCLI(t, in, "apply", "-stream", "-ndjson", "-program", prog,
		"-chunk", "1", "-workers", "1")
	if err == nil {
		t.Fatal("mid-stream error must make the command fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "ndjson row 3") || !strings.Contains(msg, "after 2 rows") {
		t.Errorf("diagnostic = %q, want the bad row and the row count", msg)
	}
	if want := "917-555-0100\n734-236-3466\n"; out != want {
		t.Errorf("partial output = %q, want %q intact", out, want)
	}
}
