// Bridge between the clx CLI and the clxd program registry: both sides
// read and write the same on-disk format (internal/progstore WAL +
// snapshot), so a program verified interactively at the terminal can be
// served by the daemon, and vice versa.
package main

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"clx/internal/progstore"
)

// parseRepairSpec turns the -repair flag ("0=2,3=1") into registry
// metadata. Validation against the program happens in applyRepairs; this
// only records what was chosen.
func parseRepairSpec(spec string) ([]progstore.Repair, error) {
	if spec == "" {
		return nil, nil
	}
	var out []progstore.Repair
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad repair %q, want source=alt", part)
		}
		i, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, err
		}
		j, err := strconv.Atoi(kv[1])
		if err != nil {
			return nil, err
		}
		out = append(out, progstore.Repair{Source: i, Alt: j})
	}
	return out, nil
}

// registerProgram durably registers an exported program in the registry
// at dir and reports the assigned id and version to stderr.
func registerProgram(stderr io.Writer, dir string, raw []byte, meta progstore.Meta) error {
	st, err := progstore.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	entry, err := st.Register(raw, meta)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "registered %s v%d in %s (target %s)\n",
		entry.ID, entry.Version, dir, entry.Target)
	return nil
}

// applyFromStore runs the hot path of the registry — apply by id, no
// synthesis — writing the transformed column to stdout and the drift
// report to stderr.
func applyFromStore(stdout, stderr io.Writer, dir, id string, rows []string) error {
	st, err := progstore.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	res, err := st.Apply(id, rows, 0)
	if err != nil {
		return err
	}
	for _, s := range res.Output {
		fmt.Fprintln(stdout, s)
	}
	if len(res.Flagged) > 0 {
		fmt.Fprintf(stderr, "%d rows matched no pattern and were left unchanged: rows %v\n",
			len(res.Flagged), res.Flagged)
	}
	printDriftReport(stderr, res.Drift)
	return nil
}

func printDriftReport(w io.Writer, d progstore.DriftReport) {
	if d.Drifted == 0 {
		return
	}
	fmt.Fprintf(w, "drift: %d/%d rows in formats the program does not cover\n", d.Drifted, d.Checked)
	for _, c := range d.Clusters {
		note := "target unreachable; needs re-labeling"
		if c.Resynthesizable {
			note = "re-register to extend the program"
		}
		fmt.Fprintf(w, "  %-36s %5d rows   e.g. %s   (%s)\n", c.NL, c.Count, c.Samples[0], note)
	}
}

// listPrograms prints the registry at dir, one program per line.
func listPrograms(stdout io.Writer, dir string) error {
	st, err := progstore.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	entries := st.List()
	if len(entries) == 0 {
		fmt.Fprintln(stdout, "registry is empty")
		return nil
	}
	for _, e := range entries {
		name := e.Name
		if name == "" {
			name = "-"
		}
		fmt.Fprintf(stdout, "%-8s v%-3d %-20s %-32s %d sources, %d rows, %s\n",
			e.ID, e.Version, name, e.Target, len(e.Sources), e.RowCount,
			time.Unix(e.CreatedAtUnix, 0).UTC().Format("2006-01-02 15:04"))
	}
	return nil
}
