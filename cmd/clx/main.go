// Command clx is a command-line front end to the CLX data transformation
// engine. It reads one string column from a file or stdin — either one
// value per line, or a column of a CSV file via -csv/-col — and supports
// the Cluster–Label–Transform workflow:
//
//	clx cluster [-levels] [-file data.txt]
//	    profile the column and print its pattern clusters (optionally the
//	    full hierarchy)
//	clx transform -target "<D>3'-'<D>3'-'<D>4" [-file data.txt] [-repair i=j]
//	    synthesize the transformation to the target pattern, print the
//	    Replace operations to stderr, and write the transformed column to
//	    stdout
//	clx explain -target "{digit}{3}-{digit}{3}-{digit}{4}" [-file data.txt]
//	    print the synthesized Replace operations with preview tables and
//	    ranked alternatives
//	clx drift -against old.txt [-file new.txt]
//	    compare two columns' pattern inventories: new formats, vanished
//	    formats, and share shifts — format drift detection for pipelines
//	clx transform -target P -save prog.json
//	    additionally save the verified program for later use
//	clx apply -program prog.json [-file data.txt]
//	    apply a previously saved program without re-synthesis
//	clx apply -stream -program prog.json [-ndjson] [-chunk n] [-workers n]
//	    same, but streaming: the column is never materialized — rows flow
//	    from the file or stdin through a bounded chunk pipeline to stdout,
//	    so memory stays fixed no matter the column size (works with
//	    -store/-id too). Input framing is lines, -csv, or -ndjson. On a
//	    mid-stream source error the rows already transformed stay on
//	    stdout, the diagnostic goes to stderr, and the exit code is
//	    non-zero.
//	clx check -program prog.json -expect want.txt [-file data.txt]
//	    regression-test a saved program: apply it and diff against the
//	    expected column, exiting non-zero on any mismatch
//	clx session -addr http://localhost:8080 -target P [-file data.txt]
//	    [-append more.txt] [-candidates 0] [-repair 0=1] [-examples "a=>b"]
//	    [-commit -name label] [-keep]
//	    drive a clxd daemon's stateful session API through the whole loop:
//	    upload the column, print its clusters, optionally append a second
//	    file, label the target, print the quantitatively-ranked repair
//	    candidates (residual rows, edit distance, description length),
//	    apply picks or example feedback, and commit the verified program
//	    into the daemon's registry; the session is deleted at exit unless
//	    -keep
//
// The CLI also speaks the clxd program-registry format. With -store <dir>
// (the same directory a clxd -store daemon serves), transform registers
// the verified program durably, apply runs a registered program by id
// with a drift report on stderr, and programs lists the registry:
//
//	clx transform -target P -store /var/lib/clx [-name phones]
//	clx apply -store /var/lib/clx -id p000001 [-file new.txt]
//	clx programs -store /var/lib/clx
//
// Target patterns may be written in either notation: compact
// ("<D>3'-'<D>4") or the natural-language display form
// ("{digit}{3}-{digit}{4}").
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	clx "clx"
	"clx/internal/progstore"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "clx:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: clx <cluster|transform|explain> [flags]")
	}
	cmd, rest := args[0], args[1:]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	file := fs.String("file", "", "input file (default: stdin)")
	target := fs.String("target", "", "target pattern, compact or NL notation")
	repair := fs.String("repair", "", "comma-separated repairs source=alt, e.g. 0=2,3=1")
	levels := fs.Bool("levels", false, "print the full pattern hierarchy")
	csvMode := fs.Bool("csv", false, "parse the input as CSV")
	col := fs.Int("col", 0, "CSV column index to use (0-based)")
	header := fs.Bool("header", false, "skip the first CSV row")
	against := fs.String("against", "", "baseline column file for drift comparison")
	save := fs.String("save", "", "write the verified program to this file (transform)")
	program := fs.String("program", "", "saved program file (apply)")
	spec := fs.String("spec", "", "per-column targets for the table command, e.g. 1=<D>3;2={digit}+")
	expect := fs.String("expect", "", "expected-output column file (check)")
	store := fs.String("store", "", "program registry directory shared with clxd (transform, apply, programs)")
	id := fs.String("id", "", "registry program id (apply), or id to re-register under (transform)")
	name := fs.String("name", "", "human label for the registered program (transform)")
	streamFlag := fs.Bool("stream", false,
		"apply in streaming mode: bounded memory, input is never materialized (apply -store/-id or -program)")
	addr := fs.String("addr", "", "clxd base URL for the session subcommand, e.g. http://localhost:8080")
	appendFile := fs.String("append", "", "second column file appended to the session after create")
	candidates := fs.Int("candidates", -1, "print ranked repair candidates for this source index (session)")
	commitFlag := fs.Bool("commit", false, "commit the labeled program into the daemon registry (session; label via -name)")
	examples := fs.String("examples", "", "comma-separated input=>output example repairs (session)")
	keep := fs.Bool("keep", false, "leave the session on the daemon instead of deleting it at exit")
	ndjson := fs.Bool("ndjson", false,
		"streaming mode only: parse the input as NDJSON, one JSON string per line")
	chunk := fs.Int("chunk", 0, "rows per chunk in streaming mode (0 = default)")
	workers := fs.Int("workers", 0, "chunk fan-out in streaming mode (0 = one per CPU, 1 = serial)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if cmd == "programs" {
		if *store == "" {
			return fmt.Errorf("programs requires -store <registry dir>")
		}
		return listPrograms(stdout, *store)
	}
	if cmd == "table" {
		var r io.Reader = stdin
		if *file != "" {
			f, err := os.Open(*file)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		return transformCSV(r, stdout, stderr, *spec, *header)
	}
	if cmd == "apply" && *streamFlag {
		// Streaming apply never materializes the column: rows flow from the
		// file or stdin through the bounded chunk pipeline to stdout.
		in, closeIn, err := openInput(*file, stdin)
		if err != nil {
			return err
		}
		defer closeIn()
		opts := streamOpts{csv: *csvMode, ndjson: *ndjson, col: *col, header: *header, chunk: *chunk, workers: *workers}
		if *store != "" {
			if *id == "" {
				return fmt.Errorf("apply -store requires -id <program id>")
			}
			return applyStreamFromStore(stdout, stderr, *store, *id, in, opts)
		}
		if *program == "" {
			return fmt.Errorf("apply requires -program <saved program file> or -store/-id")
		}
		raw, err := os.ReadFile(*program)
		if err != nil {
			return err
		}
		sp, err := clx.LoadProgram(raw)
		if err != nil {
			return err
		}
		return applyStream(stdout, stderr, sp, in, opts)
	}
	data, err := readColumn(*file, stdin, *csvMode, *col, *header)
	if err != nil {
		return err
	}
	if cmd == "session" {
		// The session subcommand uploads the column to a clxd daemon and
		// drives the interactive loop over HTTP — profiling, labeling, and
		// repair all happen server-side, so no local session is built.
		return runSession(stdout, stderr, sessionCLI{
			addr:       *addr,
			target:     *target,
			repairSpec: *repair,
			examples:   *examples,
			appendFile: *appendFile,
			candidates: *candidates,
			commitName: *name,
			commit:     *commitFlag,
			keep:       *keep,
			csvMode:    *csvMode,
			col:        *col,
			header:     *header,
		}, data)
	}
	sess := clx.NewSession(data)

	switch cmd {
	case "cluster":
		return printClusters(stdout, sess, *levels)
	case "drift":
		if *against == "" {
			return fmt.Errorf("drift requires -against <baseline file>")
		}
		base, err := readColumn(*against, strings.NewReader(""), *csvMode, *col, *header)
		if err != nil {
			return err
		}
		return printDrift(stdout, clx.NewSession(base), sess)
	case "wrangle":
		if *file == "" {
			return fmt.Errorf("wrangle requires -file (stdin is used for commands)")
		}
		return wrangle(data, stdin, stdout)
	case "check":
		if *program == "" || *expect == "" {
			return fmt.Errorf("check requires -program and -expect")
		}
		raw, err := os.ReadFile(*program)
		if err != nil {
			return err
		}
		sp, err := clx.LoadProgram(raw)
		if err != nil {
			return err
		}
		want, err := readColumn(*expect, strings.NewReader(""), *csvMode, *col, *header)
		if err != nil {
			return err
		}
		if len(want) != len(data) {
			return fmt.Errorf("check: %d input rows but %d expected rows", len(data), len(want))
		}
		out, _ := sp.Transform(data)
		mismatches := 0
		for i := range out {
			if out[i] != want[i] {
				mismatches++
				if mismatches <= 10 {
					fmt.Fprintf(stdout, "row %d: got %q, want %q (input %q)\n",
						i, out[i], want[i], data[i])
				}
			}
		}
		if mismatches > 0 {
			return fmt.Errorf("check: %d/%d rows mismatch", mismatches, len(out))
		}
		fmt.Fprintf(stdout, "ok: %d rows match\n", len(out))
		return nil
	case "apply":
		if *store != "" {
			if *id == "" {
				return fmt.Errorf("apply -store requires -id <program id>")
			}
			return applyFromStore(stdout, stderr, *store, *id, data)
		}
		if *program == "" {
			return fmt.Errorf("apply requires -program <saved program file> or -store/-id")
		}
		raw, err := os.ReadFile(*program)
		if err != nil {
			return err
		}
		sp, err := clx.LoadProgram(raw)
		if err != nil {
			return err
		}
		out, flagged := sp.Transform(data)
		for _, s := range out {
			fmt.Fprintln(stdout, s)
		}
		if len(flagged) > 0 {
			fmt.Fprintf(stderr, "%d rows matched no pattern and were left unchanged: rows %v\n",
				len(flagged), flagged)
		}
		return nil
	case "transform", "explain":
		if *target == "" {
			return fmt.Errorf("%s requires -target", cmd)
		}
		p, err := clx.ParseAnyPattern(*target)
		if err != nil {
			return err
		}
		tr, err := sess.Label(p)
		if err != nil {
			return err
		}
		if err := applyRepairs(tr, *repair); err != nil {
			return err
		}
		if cmd == "explain" {
			return printExplanation(stdout, tr)
		}
		if *save != "" || *store != "" {
			raw, err := tr.Export()
			if err != nil {
				return err
			}
			if *save != "" {
				if err := os.WriteFile(*save, raw, 0o644); err != nil {
					return err
				}
			}
			if *store != "" {
				repairs, err := parseRepairSpec(*repair)
				if err != nil {
					return err
				}
				meta := progstore.Meta{ID: *id, Name: *name, RowCount: len(data), Repairs: repairs}
				if err := registerProgram(stderr, *store, raw, meta); err != nil {
					return err
				}
			}
		}
		fmt.Fprint(stderr, tr.Explain())
		out, flagged := tr.Run()
		for _, s := range out {
			fmt.Fprintln(stdout, s)
		}
		if len(flagged) > 0 {
			fmt.Fprintf(stderr, "%d rows matched no pattern and were left unchanged: rows %v\n",
				len(flagged), flagged)
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// openInput resolves the -file flag to a reader without consuming it; the
// returned closer is a no-op for stdin.
func openInput(file string, stdin io.Reader) (io.Reader, func(), error) {
	if file == "" {
		return stdin, func() {}, nil
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func readColumn(file string, stdin io.Reader, csvMode bool, col int, header bool) ([]string, error) {
	r := stdin
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if csvMode {
		return readCSVColumn(r, col, header)
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	text := strings.TrimSuffix(string(raw), "\n")
	if text == "" {
		return nil, nil
	}
	return strings.Split(text, "\n"), nil
}

func readCSVColumn(r io.Reader, col int, header bool) ([]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var data []string
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return data, nil
		}
		if err != nil {
			return nil, err
		}
		if first && header {
			first = false
			continue
		}
		first = false
		if col < 0 || col >= len(rec) {
			return nil, fmt.Errorf("csv row has %d columns, want index %d", len(rec), col)
		}
		data = append(data, rec[col])
	}
}

func printClusters(w io.Writer, sess *clx.Session, levels bool) error {
	if levels {
		for l := sess.Levels() - 1; l >= 0; l-- {
			fmt.Fprintf(w, "level %d:\n", l)
			for _, c := range sess.Level(l) {
				fmt.Fprintf(w, "  %-40s %6d rows   e.g. %s\n", c.Pattern, c.Count, c.Sample)
			}
		}
		return nil
	}
	for _, c := range sess.Clusters() {
		fmt.Fprintf(w, "%-40s %6d rows   e.g. %s\n", c.Pattern, c.Count, c.Sample)
	}
	return nil
}

// printDrift reports the pattern-inventory differences between a baseline
// column and the current one: formats that appeared, vanished, or shifted
// share by more than one percentage point.
func printDrift(w io.Writer, base, cur *clx.Session) error {
	share := func(s *clx.Session) (map[string]float64, map[string]clx.Cluster) {
		total := len(s.Data())
		shares := map[string]float64{}
		cs := map[string]clx.Cluster{}
		for _, c := range s.Clusters() {
			k := c.Pattern.String()
			shares[k] = float64(c.Count) / float64(max(total, 1))
			cs[k] = c
		}
		return shares, cs
	}
	baseShare, baseC := share(base)
	curShare, curC := share(cur)

	var newPats, gonePats, shifted []string
	for k := range curShare {
		if _, ok := baseShare[k]; !ok {
			newPats = append(newPats, k)
		} else if d := curShare[k] - baseShare[k]; d > 0.01 || d < -0.01 {
			shifted = append(shifted, k)
		}
	}
	for k := range baseShare {
		if _, ok := curShare[k]; !ok {
			gonePats = append(gonePats, k)
		}
	}
	sort.Strings(newPats)
	sort.Strings(gonePats)
	sort.Strings(shifted)

	if len(newPats)+len(gonePats)+len(shifted) == 0 {
		fmt.Fprintln(w, "no pattern drift")
		return nil
	}
	for _, k := range newPats {
		c := curC[k]
		fmt.Fprintf(w, "NEW      %-36s %5.1f%%   e.g. %s\n", k, 100*curShare[k], c.Sample)
	}
	for _, k := range gonePats {
		fmt.Fprintf(w, "VANISHED %-36s was %4.1f%%   e.g. %s\n", k, 100*baseShare[k], baseC[k].Sample)
	}
	for _, k := range shifted {
		fmt.Fprintf(w, "SHIFT    %-36s %5.1f%% -> %.1f%%\n", k, 100*baseShare[k], 100*curShare[k])
	}
	return nil
}

func printExplanation(w io.Writer, tr *clx.Transformation) error {
	fmt.Fprint(w, tr.ExplainWithPreview(3))
	for i := range tr.Sources() {
		alts := tr.Alternatives(i)
		if len(alts) <= 1 {
			continue
		}
		fmt.Fprintf(w, "alternatives for source %d:\n", i)
		for j, op := range alts {
			marker := " "
			if j == 0 {
				marker = "*"
			}
			fmt.Fprintf(w, "  %s %d: replace with '%s'\n", marker, j, op.Replacement)
		}
	}
	return nil
}

func applyRepairs(tr *clx.Transformation, spec string) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad repair %q, want source=alt", part)
		}
		i, err := strconv.Atoi(kv[0])
		if err != nil {
			return err
		}
		j, err := strconv.Atoi(kv[1])
		if err != nil {
			return err
		}
		if err := tr.Repair(i, j); err != nil {
			return err
		}
	}
	return nil
}
