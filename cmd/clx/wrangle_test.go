package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "col.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWrangleSession(t *testing.T) {
	file := writeTemp(t, phoneInput)
	script := strings.Join([]string{
		"patterns",
		"label #3", // <D>3'-'<D>3'-'<D>4 is the third displayed pattern
		"ops",
		"run",
		"quit",
	}, "\n") + "\n"
	out, _, err := runCLI(t, script, "wrangle", "-file", file)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"5 rows in", // wait: phoneInput has 5 rows
		"#1",
		"Replace /^",
		"post-transform patterns:",
		"flagged for review",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("wrangle output missing %q:\n%s", want, out)
		}
	}
	// The post-transform display should show the unified pattern covering
	// 4 of the 5 rows.
	if !strings.Contains(out, "<D>3'-'<D>3'-'<D>4") {
		t.Errorf("post-transform pattern missing:\n%s", out)
	}
}

func TestWrangleRepairFlow(t *testing.T) {
	file := writeTemp(t, "31/12/2019\n28/02/2020\n12-31-2019\n")
	script := strings.Join([]string{
		"label <D>2'-'<D>2'-'<D>4",
		"alts 0",
		"repair 0 1",
		"run",
		"quit",
	}, "\n") + "\n"
	out, _, err := runCLI(t, script, "wrangle", "-file", file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "source 0 now uses alternative 1") {
		t.Errorf("repair confirmation missing:\n%s", out)
	}
	if !strings.Contains(out, "* 0: replace with") {
		t.Errorf("alternatives listing missing:\n%s", out)
	}
}

func TestWrangleSaveAndWrite(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "col.txt")
	if err := os.WriteFile(file, []byte("734.236.3466\n111-222-3333\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	outFile := filepath.Join(dir, "out.txt")
	progFile := filepath.Join(dir, "prog.json")
	script := strings.Join([]string{
		"label {digit}{3}-{digit}{3}-{digit}{4}",
		"write " + outFile,
		"save " + progFile,
		"quit",
	}, "\n") + "\n"
	if _, _, err := runCLI(t, script, "wrangle", "-file", file); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "734-236-3466") {
		t.Errorf("written column = %q", raw)
	}
	if _, err := os.Stat(progFile); err != nil {
		t.Error("saved program missing")
	}
}

func TestWrangleErrors(t *testing.T) {
	file := writeTemp(t, "a\nb\n")
	script := strings.Join([]string{
		"run",           // no target yet
		"label #99",     // bad index
		"label {bogus}", // bad pattern
		"bogus-command",
		"quit",
	}, "\n") + "\n"
	out, _, err := runCLI(t, script, "wrangle", "-file", file)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"no target labeled", "no pattern #99", "error:", "unknown command"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// wrangle without -file errors (stdin carries commands).
	if _, _, err := runCLI(t, "quit\n", "wrangle"); err == nil {
		t.Error("wrangle without -file should error")
	}
}

func TestTableCommand(t *testing.T) {
	csvIn := strings.Join([]string{
		"name,phone,joined",
		"Eran Yahav,(734) 645-8397,31/12/2019",
		"Kate Fisher,313.263.1192,28/02/2020",
		"Bill Gates,425-555-0100,12-31-2018",
	}, "\n") + "\n"
	out, errw, err := runCLI(t, csvIn, "table", "-header",
		"-spec", "1=<D>3'-'<D>3'-'<D>4;2=<D>2'-'<D>2'-'<D>4")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "name,phone,joined" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "734-645-8397") || !strings.Contains(lines[2], "313-263-1192") {
		t.Errorf("phones not normalized: %v", lines[1:])
	}
	if !strings.Contains(lines[1], "31-12-2019") {
		t.Errorf("dates not normalized: %v", lines[1])
	}
	if !strings.Contains(errw, "column phone") {
		t.Errorf("stderr = %q", errw)
	}
}

func TestTableCommandErrors(t *testing.T) {
	cases := [][]string{
		{"table"},                         // missing spec
		{"table", "-spec", "x=y"},         // bad column
		{"table", "-spec", "0=<D>;0=<D>"}, // duplicate column
		{"table", "-spec", "0={bogus}"},   // bad pattern
		{"table", "-spec", "5=<D>"},       // out of range for data
	}
	for _, args := range cases {
		if _, _, err := runCLI(t, "a,b\n", args...); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
}

func TestCheckCommand(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "prog.json")
	if _, _, err := runCLI(t, "(734) 645-8397\n734.236.3466\n", "transform",
		"-target", "<D>3'-'<D>3'-'<D>4", "-save", prog); err != nil {
		t.Fatal(err)
	}
	expectOK := filepath.Join(dir, "want.txt")
	if err := os.WriteFile(expectOK, []byte("917-555-0100\n313-111-2222\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, "(917) 555-0100\n313.111.2222\n", "check",
		"-program", prog, "-expect", expectOK)
	if err != nil {
		t.Fatalf("check failed: %v (%s)", err, out)
	}
	if !strings.Contains(out, "ok: 2 rows match") {
		t.Errorf("out = %q", out)
	}
	// A mismatch exits with an error and prints the diff.
	expectBad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(expectBad, []byte("999-999-9999\n313-111-2222\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err = runCLI(t, "(917) 555-0100\n313.111.2222\n", "check",
		"-program", prog, "-expect", expectBad)
	if err == nil {
		t.Error("mismatching check should error")
	}
	if !strings.Contains(out, `got "917-555-0100", want "999-999-9999"`) {
		t.Errorf("diff missing: %q", out)
	}
	// Row-count mismatch and missing flags error.
	if _, _, err := runCLI(t, "a\n", "check", "-program", prog, "-expect", expectOK); err == nil {
		t.Error("row-count mismatch should error")
	}
	if _, _, err := runCLI(t, "a\n", "check", "-program", prog); err == nil {
		t.Error("check without -expect should error")
	}
}
