// Streaming apply for the CLI: clx apply -stream runs a saved or
// registered program over stdin or a file through the bounded chunk
// pipeline, so a column of any size transforms in fixed memory — the
// command-line twin of the daemon's /apply/stream endpoint.
package main

import (
	"bufio"
	"fmt"
	"io"

	clx "clx"
	"clx/internal/progstore"
	"clx/internal/stream"
)

// streamOpts carries the flag subset the streaming path honors.
type streamOpts struct {
	csv     bool
	ndjson  bool
	col     int
	header  bool
	chunk   int
	workers int
}

// applyStream drives one program over in, writing transformed rows to
// stdout line by line and a stream summary to stderr.
func applyStream(stdout, stderr io.Writer, sp *clx.SavedProgram, in io.Reader, opts streamOpts) error {
	var rd stream.Reader
	switch {
	case opts.csv:
		rd = stream.NewCSVReader(in, opts.col, opts.header)
	case opts.ndjson:
		rd = stream.NewNDJSONReader(in)
	default:
		rd = stream.NewLineReader(in)
	}
	out := bufio.NewWriter(stdout)
	var flagged int64
	st, err := stream.Run(sp, rd, stream.LineEncoder{}, out, stream.Options{
		ChunkSize: opts.chunk,
		Workers:   opts.workers,
		OnFlagged: func(int) { flagged++ },
	})
	if ferr := out.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		return fmt.Errorf("stream apply: %w (after %d rows)", err, st.Rows)
	}
	if flagged > 0 {
		fmt.Fprintf(stderr, "%d rows matched no pattern and were left unchanged\n", flagged)
	}
	fmt.Fprintf(stderr, "streamed %d rows in %d chunks (%.0f rows/sec, peak %d chunks in flight)\n",
		st.Rows, st.Chunks, st.RowsPerSec, st.PeakInFlight)
	return nil
}

// applyStreamFromStore resolves id in the registry at dir and streams in
// through it. Unlike the buffered apply there is no drift report — drift
// clustering needs the flagged rows in memory, which streaming refuses to
// hold.
func applyStreamFromStore(stdout, stderr io.Writer, dir, id string, in io.Reader, opts streamOpts) error {
	st, err := progstore.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	sp, version, err := st.Load(id)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "streaming through %s v%d\n", id, version)
	return applyStream(stdout, stderr, sp, in, opts)
}
