// The interactive wrangling session: a line-oriented version of the CLX
// interaction model (paper Fig. 5). The user sees the pattern clusters,
// labels the target, reviews each suggested Replace operation with its
// preview, repairs from ranked alternatives or refines into child
// patterns, and finally writes the result — verification happens at the
// pattern level throughout.
//
//	clx wrangle -file data.txt
//
// Commands:
//
//	patterns            show the cluster display (again)
//	levels              show the full hierarchy
//	label <pattern>     choose the target (either notation, or #N for the
//	                    N-th displayed cluster pattern)
//	ops                 show the suggested Replace operations with previews
//	alts <i>            show ranked alternatives for source i
//	repair <i> <j>      select alternative j for source i
//	refine <i>          split source i into its child patterns
//	run                 apply and show a summary
//	write <file>        apply and write the transformed column
//	save <file>         save the verified program as JSON
//	quit
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	clx "clx"
)

func wrangle(data []string, stdin io.Reader, stdout io.Writer) error {
	sess := clx.NewSession(data)
	fmt.Fprintf(stdout, "%d rows in %d patterns:\n", len(data), len(sess.Clusters()))
	printPatternList(stdout, sess)
	fmt.Fprintln(stdout, `label the desired pattern with: label <pattern> (or "label #N")`)

	var tr *clx.Transformation
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	prompt := func() { fmt.Fprint(stdout, "clx> ") }
	needTr := func() bool {
		if tr == nil {
			fmt.Fprintln(stdout, "no target labeled yet; use: label <pattern>")
			return false
		}
		return true
	}

	for prompt(); sc.Scan(); prompt() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, arg, _ := strings.Cut(line, " ")
		arg = strings.TrimSpace(arg)
		switch cmd {
		case "quit", "exit", "q":
			return nil
		case "patterns":
			printPatternList(stdout, sess)
		case "levels":
			_ = printClusters(stdout, sess, true)
		case "label":
			target, err := resolvePattern(sess, arg)
			if err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			t, err := sess.Label(target)
			if err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			tr = t
			fmt.Fprintf(stdout, "target %s; %d Replace operations suggested:\n",
				target, len(tr.Sources()))
			fmt.Fprint(stdout, tr.ExplainWithPreview(2))
		case "ops":
			if needTr() {
				fmt.Fprint(stdout, tr.ExplainWithPreview(2))
			}
		case "alts":
			if !needTr() {
				continue
			}
			i, err := strconv.Atoi(arg)
			if err != nil || tr.Alternatives(i) == nil {
				fmt.Fprintln(stdout, "usage: alts <source index>")
				continue
			}
			for j, op := range tr.Alternatives(i) {
				marker := " "
				if j == 0 {
					marker = "*"
				}
				fmt.Fprintf(stdout, "%s %d: replace with '%s'\n", marker, j, op.Replacement)
			}
		case "repair":
			if !needTr() {
				continue
			}
			var i, j int
			if _, err := fmt.Sscanf(arg, "%d %d", &i, &j); err != nil {
				fmt.Fprintln(stdout, "usage: repair <source> <alternative>")
				continue
			}
			if err := tr.Repair(i, j); err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			fmt.Fprintf(stdout, "source %d now uses alternative %d\n", i, j)
		case "refine":
			if !needTr() {
				continue
			}
			i, err := strconv.Atoi(arg)
			if err != nil {
				fmt.Fprintln(stdout, "usage: refine <source index>")
				continue
			}
			if err := tr.Refine(i); err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			fmt.Fprintf(stdout, "source %d split into child patterns; %d operations now:\n",
				i, len(tr.Sources()))
			fmt.Fprint(stdout, tr.ExplainWithPreview(2))
		case "run":
			if !needTr() {
				continue
			}
			out, flagged := tr.Run()
			post := clx.NewSession(out)
			fmt.Fprintf(stdout, "transformed %d rows; %d flagged for review\n",
				len(out)-len(flagged), len(flagged))
			fmt.Fprintln(stdout, "post-transform patterns:")
			printPatternList(stdout, post)
		case "write":
			if !needTr() {
				continue
			}
			if arg == "" {
				fmt.Fprintln(stdout, "usage: write <file>")
				continue
			}
			out, flagged := tr.Run()
			if err := os.WriteFile(arg, []byte(strings.Join(out, "\n")+"\n"), 0o644); err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			fmt.Fprintf(stdout, "wrote %d rows to %s (%d flagged)\n", len(out), arg, len(flagged))
		case "save":
			if !needTr() {
				continue
			}
			if arg == "" {
				fmt.Fprintln(stdout, "usage: save <file>")
				continue
			}
			raw, err := tr.Export()
			if err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			if err := os.WriteFile(arg, raw, 0o644); err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			fmt.Fprintf(stdout, "saved program to %s\n", arg)
		default:
			fmt.Fprintf(stdout, "unknown command %q (patterns, levels, label, ops, alts, repair, refine, run, write, save, quit)\n", cmd)
		}
	}
	return sc.Err()
}

func printPatternList(w io.Writer, sess *clx.Session) {
	for i, c := range sess.Clusters() {
		fmt.Fprintf(w, "  #%-3d %-40s %6d rows   e.g. %s\n", i+1, c.Pattern, c.Count, c.Sample)
	}
}

// resolvePattern accepts "#N" (the N-th displayed cluster) or a pattern in
// either notation.
func resolvePattern(sess *clx.Session, arg string) (clx.Pattern, error) {
	if arg == "" {
		return clx.Pattern{}, fmt.Errorf("label needs a pattern or #N")
	}
	if strings.HasPrefix(arg, "#") {
		n, err := strconv.Atoi(arg[1:])
		cs := sess.Clusters()
		if err != nil || n < 1 || n > len(cs) {
			return clx.Pattern{}, fmt.Errorf("no pattern %s (have #1..#%d)", arg, len(cs))
		}
		return cs[n-1].Pattern, nil
	}
	return clx.ParseAnyPattern(arg)
}
