package clx_test

import (
	"strings"
	"testing"

	clx "clx"
)

// The §7.4 conditional extension through the public API: the "picture vs
// invoice" column is unsolvable with a single plan per pattern; a handful
// of examples installs guarded plans.
func TestRepairWithExamples(t *testing.T) {
	column := []string{
		"picture 001", "invoice 001", "picture 002", "invoice 002",
		"picture 003", "invoice 003",
		"PIC-777", // already in the target format
	}
	want := []string{
		"PIC-001", "DOC-001", "PIC-002", "DOC-002",
		"PIC-003", "DOC-003", "PIC-777",
	}
	sess := clx.NewSession(column)
	tr, err := sess.Label(clx.MustParsePattern("<U>+'-'<D>+"))
	if err != nil {
		t.Fatal(err)
	}
	// The unconditional program cannot be right for both keyword groups.
	out, _ := tr.Run()
	wrongBefore := 0
	for i := range out {
		if out[i] != want[i] {
			wrongBefore++
		}
	}
	if wrongBefore == 0 {
		t.Fatal("unconditional program should not solve a content conditional")
	}

	// Two examples per keyword group: one is not enough to tell the
	// constant part ('PIC') from the variable part (the id).
	err = tr.RepairWithExamples(map[string]string{
		"picture 001": "PIC-001",
		"picture 002": "PIC-002",
		"invoice 001": "DOC-001",
		"invoice 002": "DOC-002",
	})
	if err != nil {
		t.Fatal(err)
	}

	out, flagged := tr.Run()
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %q, want %q", i, out[i], want[i])
		}
	}
	if len(flagged) != 0 {
		t.Errorf("flagged = %v", flagged)
	}
	// The guarded program generalizes to new ids of known keywords and
	// refuses unknown keywords.
	if v, ok := tr.Apply("picture 999"); !ok || v != "PIC-999" {
		t.Errorf("Apply(picture 999) = %q, %v", v, ok)
	}
	if _, ok := tr.Apply("receipt 001"); ok {
		t.Error("unknown keyword should not be transformed")
	}
	// The explanation shows the conditions.
	text := tr.Explain()
	if !strings.Contains(text, `where token 1 is "picture"`) ||
		!strings.Contains(text, `where token 1 is "invoice"`) {
		t.Errorf("explanation lacks guards:\n%s", text)
	}
}

func TestRepairWithExamplesErrors(t *testing.T) {
	sess := clx.NewSession([]string{"picture 001", "invoice 001", "PIC-777"})
	tr, err := sess.Label(clx.MustParsePattern("<U>+'-'<D>+"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.RepairWithExamples(nil); err == nil {
		t.Error("too few examples should error")
	}
	if err := tr.RepairWithExamples(map[string]string{
		"picture 001": "PIC-001",
		"12/34/5678":  "x", // different format
	}); err == nil {
		t.Error("mixed-format examples should error")
	}
	// Conflicting examples for the same keyword cannot split.
	if err := tr.RepairWithExamples(map[string]string{
		"picture 001": "PIC-001",
		"picture 002": "DOC-002",
	}); err == nil {
		t.Error("conflicting examples should error")
	}
}
