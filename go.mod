module clx

go 1.22
