// Benchmarks regenerating every table and figure of the paper's evaluation
// (§7, Appendices D–E), plus micro-benchmarks for the engine's hot paths
// and ablations for the design choices called out in DESIGN.md §4.
//
//	go test -bench=. -benchmem
//
// The exhibit benchmarks report the paper's own metric as a custom unit
// (seconds of simulated user time, Steps, correct rates) via
// b.ReportMetric, so `go test -bench Fig12` prints the same numbers as
// `clxbench -exp fig12`.
package clx_test

import (
	"fmt"
	"testing"

	clx "clx"
	"clx/internal/align"
	"clx/internal/benchsuite"
	"clx/internal/cluster"
	"clx/internal/dataset"
	"clx/internal/experiments"
	"clx/internal/flashfill"
	"clx/internal/mdl"
	"clx/internal/pattern"
	"clx/internal/rematch"
	"clx/internal/simuser"
	"clx/internal/synth"
	"clx/internal/tokenize"
	"clx/tables"
)

// --- Evaluation exhibits (§7) -------------------------------------------

func BenchmarkFig11aCompletionTime(b *testing.B) {
	var rows []experiments.SystemsRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig11aCompletionTime()
	}
	for _, r := range rows {
		b.ReportMetric(r.CLX, "s_clx_"+r.Label)
		b.ReportMetric(r.FF, "s_ff_"+r.Label)
		b.ReportMetric(r.RR, "s_rr_"+r.Label)
	}
}

func BenchmarkFig11bInteractions(b *testing.B) {
	var rows []experiments.SystemsRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig11bInteractions()
	}
	for _, r := range rows {
		b.ReportMetric(r.CLX, "clx_"+r.Label)
		b.ReportMetric(r.FF, "ff_"+r.Label)
	}
}

func BenchmarkFig11cTimestamps(b *testing.B) {
	var clx []float64
	for i := 0; i < b.N; i++ {
		_, _, clx = experiments.Fig11cTimestamps()
	}
	if len(clx) > 0 {
		b.ReportMetric(clx[len(clx)-1], "s_clx_last")
	}
}

func BenchmarkFig12VerificationTime(b *testing.B) {
	var cg, fg float64
	for i := 0; i < b.N; i++ {
		cg, fg, _ = experiments.VerificationGrowth()
	}
	b.ReportMetric(cg, "x_clx_growth")
	b.ReportMetric(fg, "x_ff_growth")
}

func BenchmarkFig13Comprehension(b *testing.B) {
	var res []struct{}
	_ = res
	var quiz [3]float64
	for i := 0; i < b.N; i++ {
		for _, q := range experiments.Fig13Comprehension() {
			switch q.System {
			case "CLX":
				quiz[0] = q.Overall
			case "FlashFill":
				quiz[1] = q.Overall
			case "RegexReplace":
				quiz[2] = q.Overall
			}
		}
	}
	b.ReportMetric(quiz[0], "rate_clx")
	b.ReportMetric(quiz[1], "rate_ff")
	b.ReportMetric(quiz[2], "rate_rr")
}

func BenchmarkFig14TaskCompletion(b *testing.B) {
	var rows []experiments.SystemsRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig14TaskCompletion()
	}
	for _, r := range rows {
		b.ReportMetric(r.CLX, "s_clx_"+r.Label)
		b.ReportMetric(r.FF, "s_ff_"+r.Label)
	}
}

func BenchmarkTable7UserEffort(b *testing.B) {
	var vsFF, vsRR experiments.WTL
	for i := 0; i < b.N; i++ {
		vsFF, vsRR = experiments.Table7()
	}
	b.ReportMetric(float64(vsFF.Wins), "wins_vs_ff")
	b.ReportMetric(float64(vsFF.Losses), "losses_vs_ff")
	b.ReportMetric(float64(vsRR.Wins), "wins_vs_rr")
	b.ReportMetric(float64(vsRR.Losses), "losses_vs_rr")
}

func BenchmarkFig15Speedup(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		sp := experiments.Fig15Speedups()
		mean = 0
		for _, s := range sp {
			mean += s.VsFF
		}
		mean /= float64(len(sp))
	}
	b.ReportMetric(mean, "x_mean_vs_ff")
}

func BenchmarkFig16StepCDF(b *testing.B) {
	var e experiments.AppendixEStats
	for i := 0; i < b.N; i++ {
		e = experiments.AppendixE()
	}
	b.ReportMetric(e.PerfectWithin2Steps, "frac_perfect_le2")
	b.ReportMetric(e.SingleSelection, "frac_single_sel")
	b.ReportMetric(e.ZeroAdjust, "frac_zero_adjust")
	b.ReportMetric(e.AtMostOneAdjust, "frac_le1_adjust")
}

func BenchmarkExpressivity(b *testing.B) {
	var e experiments.ExpressivityResult
	for i := 0; i < b.N; i++ {
		e = experiments.Expressivity()
	}
	b.ReportMetric(float64(e.CLX), "clx_of_47")
	b.ReportMetric(float64(e.FF), "ff_of_47")
	b.ReportMetric(float64(e.RR), "rr_of_47")
}

// BenchmarkExtensionConditionals measures the §7.4 future-work extension
// (content-conditional guards): suite coverage with and without it.
func BenchmarkExtensionConditionals(b *testing.B) {
	ext := simuser.DefaultOptions()
	ext.ContentConditionals = true
	var plain, extended float64
	for i := 0; i < b.N; i++ {
		plain, extended = 0, 0
		for _, task := range benchsuite.Tasks() {
			if simuser.SimulateCLX(task.Inputs, task.Outputs, simuser.DefaultOptions()).Perfect() {
				plain++
			}
			if simuser.SimulateCLX(task.Inputs, task.Outputs, ext).Perfect() {
				extended++
			}
		}
	}
	b.ReportMetric(plain, "plain_of_47")
	b.ReportMetric(extended, "extended_of_47")
}

// --- Engine micro-benchmarks (the "efficiency comparable to FlashFill"
// claim of §7) --------------------------------------------------------

func BenchmarkTokenize(b *testing.B) {
	rows, _ := dataset.TimesSquarePhones()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tokenize.Tokenize(rows[i%len(rows)])
	}
}

func BenchmarkMatcher(b *testing.B) {
	p := pattern.MustParse("<AN>+'@'<AN>+'.'<AN>+").Tokens()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rematch.Matches(p, "john-smith_42@example mail.com")
	}
}

func BenchmarkClusterThroughput(b *testing.B) {
	rows, _ := dataset.TimesSquarePhones()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Profile(rows, cluster.DefaultOptions())
	}
	b.ReportMetric(float64(len(rows)), "rows/op")
}

func BenchmarkAlignment(b *testing.B) {
	src := pattern.MustParse("<U><L>+' '<U><L>+','' '<U><L>+'.'")
	tgt := pattern.MustParse("<U><L>+','' '<U>'.'")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.Align(tgt, src)
	}
}

func BenchmarkSynthesisLatency(b *testing.B) {
	rows, _ := dataset.TimesSquarePhones()
	target := pattern.MustParse("<D>3'-'<D>3'-'<D>4")
	h := cluster.Profile(rows, cluster.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		synth.Synthesize(h, target, synth.DefaultOptions())
	}
}

func BenchmarkEndToEndSession(b *testing.B) {
	rows, _ := dataset.TimesSquarePhones()
	target := clx.MustParsePattern("<D>3'-'<D>3'-'<D>4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := clx.NewSession(rows)
		tr, err := sess.Label(target)
		if err != nil {
			b.Fatal(err)
		}
		tr.Run()
	}
}

// workerSweep is the worker-count grid of the parallel benchmarks; it
// matches the determinism test so every measured configuration is also a
// verified-identical one.
var workerSweep = []int{1, 2, 4, 8}

// BenchmarkParallelProfile sweeps cluster.Profile across worker counts
// (Workers=1 is the serial baseline; see BENCH_pipeline.json for the
// tracked serial-vs-parallel trajectory).
func BenchmarkParallelProfile(b *testing.B) {
	rows, _ := dataset.Phones(10000, 6, 77)
	for _, w := range workerSweep {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			opts := cluster.DefaultOptions()
			opts.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cluster.Profile(rows, opts)
			}
		})
	}
}

// BenchmarkParallelEndToEnd sweeps the full profile → synthesize →
// transform session across worker counts.
func BenchmarkParallelEndToEnd(b *testing.B) {
	rows, _ := dataset.Phones(10000, 6, 77)
	target := clx.MustParsePattern("<D>3'-'<D>3'-'<D>4")
	for _, w := range workerSweep {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			opts := clx.DefaultOptions()
			opts.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess := clx.NewSession(rows, opts)
				tr, err := sess.Label(target)
				if err != nil {
					b.Fatal(err)
				}
				tr.Run()
			}
		})
	}
}

func BenchmarkFlashFillLatency(b *testing.B) {
	examples := []flashfill.Example{
		{In: "(734) 645-8397", Out: "734-645-8397"},
		{In: "734.236.3466", Out: "734-236-3466"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flashfill.Learn(examples); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §4) -------------------------------------------

// ablationTasks is a representative slice of the suite exercising the
// ambiguity the ranking must resolve.
func ablationTasks() []benchsuite.Task {
	names := []string{
		"sygus-phone-3", "sygus-univ-1", "sygus-name-combine-4",
		"ff-ex10-dates", "bf-ex3-medical", "pp-ex3-address",
	}
	var out []benchsuite.Task
	for _, n := range names {
		t, ok := benchsuite.ByName(n)
		if !ok {
			panic("missing ablation task " + n)
		}
		out = append(out, t)
	}
	return out
}

// BenchmarkAblationRanking compares the composite ranking (monotone /
// no-reuse / boilerplate strata over MDL) against pure Eq-3 MDL ordering:
// the fraction of (source, rows) groups whose default plan is correct.
func BenchmarkAblationRanking(b *testing.B) {
	tasks := ablationTasks()
	var composite, pure float64
	for i := 0; i < b.N; i++ {
		var total, okComposite, okPure int
		for _, task := range tasks {
			h := cluster.Profile(task.Inputs, cluster.DefaultOptions())
			targets := simuser.SelectTargets(task.Inputs, task.Outputs)
			for _, tgt := range targets {
				res := synth.Synthesize(h, tgt, synth.DefaultOptions())
				for _, src := range res.Sources {
					rows := rowsWanting(task, src.Source, tgt)
					if len(rows) == 0 {
						continue
					}
					total++
					if planCorrect(src.Plans[0].Plan, src.Source, task, rows) {
						okComposite++
					}
					// Pure MDL default: minimum DL regardless of strata.
					best := 0
					for j, r := range src.Plans {
						if r.DL < src.Plans[best].DL {
							best = j
						}
					}
					if planCorrect(src.Plans[best].Plan, src.Source, task, rows) {
						okPure++
					}
				}
			}
		}
		composite = float64(okComposite) / float64(total)
		pure = float64(okPure) / float64(total)
	}
	b.ReportMetric(composite, "default_ok_composite")
	b.ReportMetric(pure, "default_ok_pure_mdl")
}

func rowsWanting(task benchsuite.Task, src, tgt pattern.Pattern) []int {
	var rows []int
	for i := range task.Inputs {
		if task.Inputs[i] != task.Outputs[i] && src.Matches(task.Inputs[i]) && tgt.Matches(task.Outputs[i]) {
			rows = append(rows, i)
		}
	}
	return rows
}

func planCorrect(p interface {
	Apply(pattern.Pattern, string) (string, error)
}, src pattern.Pattern, task benchsuite.Task, rows []int) bool {
	for _, i := range rows {
		out, err := p.Apply(src, task.Inputs[i])
		if err != nil || out != task.Outputs[i] {
			return false
		}
	}
	return true
}

// BenchmarkAblationCombine measures the value of sequential-extract
// combining (Alg 3 lines 10–17): mean operators per default plan with and
// without it.
func BenchmarkAblationCombine(b *testing.B) {
	src := pattern.MustParse("<D>2'/'<D>2'/'<D>4")
	tgt := pattern.MustParse("<D>2'/'<D>2")
	var with, without float64
	for i := 0; i < b.N; i++ {
		d1 := align.Align(tgt, src)
		d2 := align.AlignSingle(tgt, src)
		p1 := mdl.TopK(d1, src, 1)
		p2 := mdl.TopK(d2, src, 1)
		with = float64(p1[0].Plan.Len())
		without = float64(p2[0].Plan.Len())
	}
	b.ReportMetric(with, "ops_with_combine")
	b.ReportMetric(without, "ops_without_combine")
}

// BenchmarkAblationHierarchy compares synthesizing over the full hierarchy
// against leaves only: the number of Replace operations the user must
// verify.
func BenchmarkAblationHierarchy(b *testing.B) {
	// Names vary in length, so the leaf level holds one cluster per
	// length combination while level 1 unifies them; the target uses '+'
	// quantifiers so the unified pattern remains a sound producer.
	names := dataset.Names(120, 9)
	target := pattern.MustParse("<U>+'.'' '<U>+<L>+")
	var full, leaves float64
	for i := 0; i < b.N; i++ {
		h := cluster.Profile(names, cluster.DefaultOptions())
		res := synth.Synthesize(h, target, synth.DefaultOptions())
		full = float64(len(res.Sources))
		leavesOnly := &cluster.Hierarchy{Levels: h.Levels[:1], Clusters: h.Clusters, Data: h.Data}
		res2 := synth.Synthesize(leavesOnly, target, synth.DefaultOptions())
		leaves = float64(len(res2.Sources))
	}
	b.ReportMetric(full, "replace_ops_hierarchy")
	b.ReportMetric(leaves, "replace_ops_leaves_only")
}

// BenchmarkAblationConstants measures constant-token discovery (§4.1):
// suite coverage and total user effort with and without it. Measured:
// coverage is unchanged and Steps are within a few of each other — the
// paper motivates discovery by program *readability* ('Dr.' shown as a
// constant), which Step counts do not capture.
func BenchmarkAblationConstants(b *testing.B) {
	off := simuser.DefaultOptions()
	off.Cluster.DiscoverConstants = false
	var perfectOn, perfectOff, stepsOn, stepsOff float64
	for i := 0; i < b.N; i++ {
		perfectOn, perfectOff, stepsOn, stepsOff = 0, 0, 0, 0
		for _, task := range benchsuite.Tasks() {
			on := simuser.SimulateCLX(task.Inputs, task.Outputs, simuser.DefaultOptions())
			offRes := simuser.SimulateCLX(task.Inputs, task.Outputs, off)
			if on.Perfect() {
				perfectOn++
			}
			if offRes.Perfect() {
				perfectOff++
			}
			stepsOn += float64(on.Steps())
			stepsOff += float64(offRes.Steps())
		}
	}
	b.ReportMetric(perfectOn, "perfect_with_constants")
	b.ReportMetric(perfectOff, "perfect_without_constants")
	b.ReportMetric(stepsOn, "steps_with_constants")
	b.ReportMetric(stepsOff, "steps_without_constants")
}

// BenchmarkAblationValidate measures the Eq-2 frequency-count filter: time
// and candidate counts with and without it.
func BenchmarkAblationValidate(b *testing.B) {
	rows, _ := dataset.TimesSquarePhones()
	target := pattern.MustParse("<D>3'-'<D>3'-'<D>4")
	h := cluster.Profile(rows, cluster.DefaultOptions())
	on := synth.DefaultOptions()
	off := synth.DefaultOptions()
	off.DisableValidate = true
	b.Run("validate-on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			synth.Synthesize(h, target, on)
		}
	})
	b.Run("validate-off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			synth.Synthesize(h, target, off)
		}
	})
}

// BenchmarkSuiteScaling reports end-to-end CLX synthesis latency across
// input sizes — the interactivity requirement of §4.
func BenchmarkSuiteScaling(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("rows-%d", n), func(b *testing.B) {
			rows, _ := dataset.Phones(n, 6, 77)
			target := pattern.MustParse("<D>3'-'<D>3'-'<D>4")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := cluster.Profile(rows, cluster.DefaultOptions())
				res := synth.Synthesize(h, target, synth.DefaultOptions())
				res.Transform()
			}
		})
	}
}

// --- Newer subsystems ----------------------------------------------------

func BenchmarkTablesUnify(b *testing.B) {
	orgs := []tables.Table{
		{Name: "a", Headers: []string{"Name", "Phone", "City"}},
		{Name: "b", Headers: []string{"phone", "name", "city"}},
		{Name: "c", Headers: []string{"Name", "City", "Phone"}},
	}
	rows, want := dataset.Phones(120, 1, 5)
	names := dataset.Names(120, 5)
	cities := dataset.Names(120, 6)
	for i := 0; i < 40; i++ {
		orgs[0].Rows = append(orgs[0].Rows, []string{names[i], want[i], cities[i]})
		orgs[1].Rows = append(orgs[1].Rows, []string{"(" + rows[40+i][:3] + ") " + rows[40+i][4:], names[40+i], cities[40+i]})
		orgs[2].Rows = append(orgs[2].Rows, []string{names[80+i], cities[80+i], rows[80+i]})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tables.Unify(orgs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSavedProgramApply(b *testing.B) {
	rows, _ := dataset.Phones(50, 5, 8)
	sess := clx.NewSession(rows)
	tr, err := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
	if err != nil {
		b.Fatal(err)
	}
	raw, err := tr.Export()
	if err != nil {
		b.Fatal(err)
	}
	sp, err := clx.LoadProgram(raw)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Apply(rows[i%len(rows)])
	}
}
