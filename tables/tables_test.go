package tables_test

import (
	"fmt"
	"testing"

	"clx/tables"
)

func contactTables() []tables.Table {
	return []tables.Table{
		{
			Name:    "standard",
			Headers: []string{"Name", "Phone"},
			Rows: [][]string{
				{"Eran Yahav", "734-645-8397"},
				{"Kate Fisher", "313-263-1192"},
			},
		},
		{
			Name:    "legacy",
			Headers: []string{"PHONE", "NAME"},
			Rows: [][]string{
				{"(734) 645-0001", "Rosa Cole"},
				{"(517) 555-2222", "Omar Sy"},
			},
		},
	}
}

func TestPublicTableWorkflow(t *testing.T) {
	all := contactTables()
	groups := tables.Cluster(all)
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	unified, maps, err := tables.Unify(all, 0)
	if err != nil {
		t.Fatal(err)
	}
	if unified[1].Rows[0][0] != "Rosa Cole" || unified[1].Rows[0][1] != "734-645-0001" {
		t.Errorf("unified legacy row = %v", unified[1].Rows[0])
	}
	if len(maps[1].Columns) != 2 {
		t.Errorf("mapping = %+v", maps[1])
	}
	s := tables.SchemaOf(unified[1])
	if s.Columns[1].Pattern.String() != "<D>+'-'<D>+'-'<D>+" {
		t.Errorf("phone pattern after unify = %s", s.Columns[1].Pattern)
	}
}

func TestAlignPublic(t *testing.T) {
	all := contactTables()
	m := tables.Align(all[1], all[0])
	if len(m.Columns) != 2 {
		t.Fatalf("mapping = %+v", m)
	}
	if m.Columns[0].Dst != 0 || m.Columns[0].Src != 1 {
		t.Errorf("name mapping = %+v", m.Columns[0])
	}
}

func ExampleUnify() {
	all := []tables.Table{
		{Name: "std", Headers: []string{"Name", "Phone"},
			Rows: [][]string{{"Kate Fisher", "313-263-1192"}}},
		{Name: "legacy", Headers: []string{"phone", "name"},
			Rows: [][]string{{"(734) 645-0001", "Rosa Cole"}}},
	}
	unified, _, _ := tables.Unify(all, 0)
	fmt.Println(unified[1].Headers, unified[1].Rows[0])
	// Output: [Name Phone] [Rosa Cole 734-645-0001]
}
