// Package tables applies the CLX paradigm to whole tables — the second
// instantiation the paper sketches as future work (§9): heterogeneous
// spreadsheet tables storing the same information are clustered by schema,
// the user labels the standard table, and every other table is converted
// into its format, with string-level CLX transformations synthesized for
// columns whose value formats differ.
//
//	groups := tables.Cluster(all)              // Cluster
//	unified, maps, err := tables.Unify(group, 0) // Label (index) + Transform
package tables

import (
	"clx/internal/tablex"
)

// Table is one spreadsheet-like table: headers plus rows of cells.
type Table = tablex.Table

// Schema is a table's structural fingerprint: normalized headers and
// dominant value patterns.
type Schema = tablex.Schema

// Mapping describes how a source table's columns were aligned onto the
// target's.
type Mapping = tablex.Mapping

// ColumnMap is one aligned column pair of a Mapping.
type ColumnMap = tablex.ColumnMap

// SchemaOf fingerprints a table.
func SchemaOf(t Table) Schema { return tablex.SchemaOf(t) }

// Cluster groups tables describing the same information (the Cluster
// phase). Each group is a slice of indices into the input.
func Cluster(ts []Table) [][]int { return tablex.ClusterTables(ts) }

// Align maps src's columns onto dst's by header and value-pattern evidence.
func Align(src, dst Table) Mapping { return tablex.AlignTables(src, dst) }

// Transform converts src into dst's format. The returned pairs are
// (row, targetColumn) cells whose value matched no known source format and
// was copied through for review.
func Transform(src, dst Table) (Table, Mapping, [][2]int, error) {
	return tablex.TransformTable(src, dst)
}

// Unify converts every table of a group into the format of the table at
// targetIdx (the Label + Transform phases).
func Unify(ts []Table, targetIdx int) ([]Table, []Mapping, error) {
	return tablex.Unify(ts, targetIdx)
}
