#!/bin/sh
# fuzz_smoke.sh — short fuzzing pass over every fuzz target.
#
# `go test -fuzz` takes exactly one target per invocation, so this
# enumerates the targets and gives each FUZZTIME (default 10s) of
# coverage-guided input generation on top of its seed corpus. Any crasher
# fails the run (and `go test` writes the reproducer under testdata/fuzz).
set -eu
cd "$(dirname "$0")/.."
FUZZTIME=${FUZZTIME:-10s}

targets=$(go test -list 'Fuzz.*' . | grep '^Fuzz' || true)
if [ -z "$targets" ]; then
	echo "fuzz-smoke: no fuzz targets found" >&2
	exit 1
fi
for t in $targets; do
	echo "fuzz-smoke: $t ($FUZZTIME)"
	go test -run '^$' -fuzz "^$t\$" -fuzztime "$FUZZTIME" .
done
echo "fuzz-smoke: all targets clean"
