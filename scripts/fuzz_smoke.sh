#!/bin/sh
# fuzz_smoke.sh — short fuzzing pass over every fuzz target.
#
# `go test -fuzz` takes exactly one target per invocation, so this
# enumerates the targets per package and gives each FUZZTIME (default 10s)
# of coverage-guided input generation on top of its seed corpus. Any
# crasher fails the run (and `go test` writes the reproducer under
# testdata/fuzz). FUZZ_PKGS lists the packages holding fuzz targets; a
# package that loses all of its targets fails the run rather than being
# silently skipped.
set -eu
cd "$(dirname "$0")/.."
FUZZTIME=${FUZZTIME:-10s}
FUZZ_PKGS=${FUZZ_PKGS:-". ./internal/automaton ./internal/cluster"}

found=0
for pkg in $FUZZ_PKGS; do
	targets=$(go test -list 'Fuzz.*' "$pkg" | grep '^Fuzz' || true)
	if [ -z "$targets" ]; then
		echo "fuzz-smoke: no fuzz targets found in $pkg" >&2
		exit 1
	fi
	for t in $targets; do
		found=$((found + 1))
		echo "fuzz-smoke: $pkg $t ($FUZZTIME)"
		go test -run '^$' -fuzz "^$t\$" -fuzztime "$FUZZTIME" "$pkg"
	done
done
echo "fuzz-smoke: all $found targets clean"
