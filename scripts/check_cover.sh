#!/bin/sh
# check_cover.sh — enforce the checked-in per-package coverage floors.
#
# Runs `go test -short -cover ./...` once and compares every package's
# statement coverage against scripts/cover_floors.txt. Exits non-zero if
# any listed package tests fail or fall below its floor, or if a floor
# references a package the test run did not report (renamed/deleted
# packages must update the floors file).
set -eu
cd "$(dirname "$0")/.."
floors=scripts/cover_floors.txt

out=$(go test -short -cover ./... 2>&1) || {
	printf '%s\n' "$out"
	echo "cover: tests failed" >&2
	exit 1
}
printf '%s\n' "$out"

fail=0
while read -r pkg floor; do
	case "$pkg" in '' | '#'*) continue ;; esac
	pct=$(printf '%s\n' "$out" |
		awk -v pkg="$pkg" '$1 == "ok" && $2 == pkg {
			for (i = 3; i <= NF; i++) if ($i == "coverage:") { sub(/%$/, "", $(i+1)); print $(i+1); exit }
		}')
	if [ -z "$pct" ]; then
		echo "cover: no coverage reported for $pkg (package gone? update $floors)" >&2
		fail=1
		continue
	fi
	below=$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p + 0 < f + 0) ? 1 : 0 }')
	if [ "$below" = 1 ]; then
		echo "cover: $pkg at ${pct}% is below its ${floor}% floor" >&2
		fail=1
	fi
done <"$floors"

if [ "$fail" = 0 ]; then
	echo "cover: all floors hold"
fi
exit "$fail"
