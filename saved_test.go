package clx_test

import (
	"encoding/json"
	"strings"
	"testing"

	clx "clx"
)

func TestExportLoadRoundTrip(t *testing.T) {
	column := []string{
		"(734) 645-8397", "734.236.3466", "734-422-8073", "N/A",
	}
	sess := clx.NewSession(column)
	tr, err := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	// The JSON is human-auditable: patterns in compact notation, named ops.
	if !strings.Contains(string(raw), `"target": "<D>3'-'<D>3'-'<D>4"`) ||
		!strings.Contains(string(raw), `"extract"`) {
		t.Errorf("export = %s", raw)
	}
	sp, err := clx.LoadProgram(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Target().Equal(tr.Target()) {
		t.Errorf("target = %s", sp.Target())
	}
	// The loaded program behaves identically to the live transformation.
	wantOut, wantFlag := tr.Run()
	gotOut, gotFlag := sp.Transform(column)
	for i := range column {
		if gotOut[i] != wantOut[i] {
			t.Errorf("row %d: loaded %q, live %q", i, gotOut[i], wantOut[i])
		}
	}
	if len(gotFlag) != len(wantFlag) {
		t.Errorf("flagged: loaded %v, live %v", gotFlag, wantFlag)
	}
	// And on novel data.
	if out, ok := sp.Apply("(917) 555-0100"); !ok || out != "917-555-0100" {
		t.Errorf("Apply novel = %q, %v", out, ok)
	}
	if _, ok := sp.Apply("+1 724-285-5210"); ok {
		t.Error("unknown format should not be transformed")
	}
}

func TestExportWithRepairAndGuards(t *testing.T) {
	// Repairs and guarded cases survive serialization.
	dates := clx.NewSession([]string{"31/12/2019", "28/02/2020", "12-31-2019"})
	tr, err := dates.Label(clx.MustParsePattern("<D>2'-'<D>2'-'<D>4"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Repair(0, 1); err != nil {
		t.Fatal(err)
	}
	raw, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := clx.LoadProgram(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out, ok := sp.Apply("31/12/2019"); !ok || out != "12-31-2019" {
		t.Errorf("repaired plan lost in export: %q, %v", out, ok)
	}

	cond := clx.NewSession([]string{
		"picture 001", "invoice 001", "picture 002", "invoice 002", "PIC-777",
	})
	tr2, err := cond.Label(clx.MustParsePattern("<U>+'-'<D>+"))
	if err != nil {
		t.Fatal(err)
	}
	err = tr2.RepairWithExamples(map[string]string{
		"picture 001": "PIC-001", "picture 002": "PIC-002",
		"invoice 001": "DOC-001", "invoice 002": "DOC-002",
	})
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := tr2.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw2), `"guard"`) {
		t.Errorf("guards missing from export: %s", raw2)
	}
	sp2, err := clx.LoadProgram(raw2)
	if err != nil {
		t.Fatal(err)
	}
	if out, ok := sp2.Apply("invoice 042"); !ok || out != "DOC-042" {
		t.Errorf("guarded plan lost: %q, %v", out, ok)
	}
	if _, ok := sp2.Apply("receipt 001"); ok {
		t.Error("unknown keyword should stay unmatched after load")
	}
}

func TestLoadProgramErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"target":"<oops","cases":[]}`,
		`{"target":"<D>","cases":[{"source":"<D>","plan":[{"op":"bogus"}]}]}`,
		`{"target":"<D>","cases":[{"source":"<D>","plan":[{"op":"extract","i":1,"j":5}]}]}`,
		`{"target":"<D>","cases":[{"source":"<D>","guard":{"token":9,"value":"x"},"plan":[]}]}`,
	}
	for _, c := range cases {
		if _, err := clx.LoadProgram([]byte(c)); err == nil {
			t.Errorf("LoadProgram(%s) succeeded, want error", c)
		}
	}
}

func TestSavedProgramJSONShape(t *testing.T) {
	sess := clx.NewSession([]string{"734.236.3466", "111-222-3333"})
	tr, _ := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
	raw, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	if _, ok := v["target"]; !ok {
		t.Error("missing target field")
	}
	if _, ok := v["cases"]; !ok {
		t.Error("missing cases field")
	}
}

// Property over the whole benchmark suite: Export/Load preserves behavior
// on every row of every task.
func TestExportLoadSuiteWide(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{
		"sygus-phone-3", "bf-ex3-medical", "ff-ex9-names", "sygus-univ-1",
		"prose-ex1-country", "sygus-car-3", "pp-ex3-address",
	} {
		task := mustTask(t, name)
		sess := clx.NewSession(task.Inputs)
		for _, target := range clxTargets(task.Outputs) {
			tr, err := sess.Label(target)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			raw, err := tr.Export()
			if err != nil {
				t.Fatalf("%s: export: %v", name, err)
			}
			sp, err := clx.LoadProgram(raw)
			if err != nil {
				t.Fatalf("%s: load: %v", name, err)
			}
			liveOut, _ := tr.Run()
			loadOut, _ := sp.Transform(task.Inputs)
			for i := range liveOut {
				if liveOut[i] != loadOut[i] {
					t.Errorf("%s row %d: live %q, loaded %q", name, i, liveOut[i], loadOut[i])
				}
			}
		}
	}
}

// AppendApply agrees with Apply byte for byte on both engines — the
// automaton fast path and the backtracking reference after
// DisableAutomaton — including uncovered rows (input passthrough, ok
// false) and buffer reuse across calls.
func TestAppendApplyBothEngines(t *testing.T) {
	column := []string{
		"(734) 645-8397", "734.236.3466", "734-422-8073", "N/A",
	}
	sess := clx.NewSession(column)
	tr, err := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	auto, err := clx.LoadProgram(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !auto.HasAutomaton() {
		t.Fatal("phones program should lower to an automaton")
	}
	ref, err := clx.LoadProgram(raw)
	if err != nil {
		t.Fatal(err)
	}
	ref.DisableAutomaton()
	if ref.HasAutomaton() {
		t.Fatal("DisableAutomaton left the automaton attached")
	}

	subjects := append([]string{"", "x", "313.263.1192"}, column...)
	for _, sp := range []*clx.SavedProgram{auto, ref} {
		var buf []byte
		for _, s := range subjects {
			want, wantOK := sp.Apply(s)
			buf = buf[:0]
			buf = append(buf, "pre|"...)
			out, ok := sp.AppendApply(buf, s)
			if ok != wantOK {
				t.Fatalf("AppendApply(%q) ok=%v, Apply ok=%v", s, ok, wantOK)
			}
			got := string(out[len("pre|"):])
			if ok && got != want {
				t.Errorf("AppendApply(%q) = %q, Apply = %q", s, got, want)
			}
			if !ok && got != s {
				t.Errorf("AppendApply(%q) uncovered row appended %q, want input", s, got)
			}
			buf = out
		}

		// The chunk applier is the same function bound to chunk scratch.
		apply, release := sp.ChunkApplier()
		for _, s := range subjects {
			want, wantOK := sp.Apply(s)
			out, ok := apply(nil, s)
			if ok != wantOK || (ok && string(out) != want) {
				t.Errorf("ChunkApplier(%q) = (%q,%v), Apply = (%q,%v)", s, out, ok, want, wantOK)
			}
		}
		release()
	}
}
